/**
 * @file
 * Tests for the crash-consistent counter-mode memory with
 * Osiris-style ECC-assisted counter recovery (Section III-E).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "crypto/secure_memory.hh"

namespace esd
{
namespace
{

AesKey
key()
{
    AesKey k{};
    for (int i = 0; i < 16; ++i)
        k[i] = static_cast<std::uint8_t>(0x30 + i);
    return k;
}

CacheLine
randomLine(Pcg32 &rng)
{
    CacheLine l;
    rng.fillLine(l);
    return l;
}

TEST(SecureMemory, ReadBackPlaintext)
{
    SecureCounterMemory mem(key(), 4);
    Pcg32 rng(1);
    CacheLine a = randomLine(rng);
    mem.write(0, a);
    CacheLine out;
    ASSERT_TRUE(mem.read(0, out));
    EXPECT_EQ(out, a);
    EXPECT_FALSE(mem.read(64, out));
}

TEST(SecureMemory, CounterAdvancesAndPersistsOnStride)
{
    SecureCounterMemory mem(key(), 4);
    CacheLine l;
    mem.write(0, l);  // ctr 1: first-touch persist
    EXPECT_EQ(mem.counterPersists(), 1u);
    mem.write(0, l);  // 2
    mem.write(0, l);  // 3
    EXPECT_EQ(mem.counterPersists(), 1u);
    mem.write(0, l);  // 4: stride persist
    EXPECT_EQ(mem.counterPersists(), 2u);
    EXPECT_EQ(mem.counter(0), 4u);
}

TEST(SecureMemory, RecoveryWithExactCounters)
{
    SecureCounterMemory mem(key(), 1);  // persist every write
    Pcg32 rng(2);
    for (int i = 0; i < 50; ++i)
        mem.write(static_cast<Addr>(i) * kLineSize, randomLine(rng));
    mem.crash();
    RecoveryReport rep = mem.recover();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.lines, 50u);
    EXPECT_EQ(rep.exact, 50u);
    EXPECT_EQ(rep.recovered, 0u);
}

TEST(SecureMemory, RecoveryDerivesLaggingCounters)
{
    SecureCounterMemory mem(key(), 8);
    Pcg32 rng(3);
    std::unordered_map<Addr, CacheLine> expect;
    // Re-write lines varying numbers of times so persisted counters
    // lag by varying deltas.
    for (int line = 0; line < 40; ++line) {
        Addr addr = static_cast<Addr>(line) * kLineSize;
        int rewrites = 1 + (line % 11);
        CacheLine last;
        for (int w = 0; w < rewrites; ++w)
            last = randomLine(rng);
        for (int w = 0; w < rewrites; ++w) {
            // write the same final value last so expectation is easy
            mem.write(addr, w == rewrites - 1 ? last : randomLine(rng));
        }
        expect[addr] = last;
    }
    mem.crash();
    RecoveryReport rep = mem.recover();
    EXPECT_TRUE(rep.ok());
    EXPECT_GT(rep.recovered, 0u);  // some counters genuinely lagged

    for (const auto &[addr, want] : expect) {
        CacheLine out;
        ASSERT_TRUE(mem.read(addr, out));
        EXPECT_EQ(out, want) << "addr " << addr;
    }
}

TEST(SecureMemory, RecoveryHandlesCorrectableMediaFault)
{
    SecureCounterMemory mem(key(), 8);
    Pcg32 rng(4);
    CacheLine data = randomLine(rng);
    Addr addr = 128;
    for (int i = 0; i < 5; ++i)
        mem.write(addr, data);  // counter 5, persisted 1
    mem.corruptStoredBit(addr, 100);
    mem.crash();
    RecoveryReport rep = mem.recover();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.recoveredScrubbed, 1u);
    // The counter is right; the single-bit fault remains in the
    // ciphertext and is the read path's (SEC-DED) problem.
    EXPECT_EQ(mem.counter(addr), 5u);
}

TEST(SecureMemory, StrideOnePersistsEveryWrite)
{
    SecureCounterMemory mem(key(), 1);
    CacheLine l;
    for (int i = 0; i < 10; ++i)
        mem.write(0, l);
    EXPECT_EQ(mem.counterPersists(), 10u);
}

TEST(SecureMemory, PersistTrafficDropsWithStride)
{
    // The whole point of lazy persistence: stride-8 cuts counter
    // writes ~8x on rewrite-heavy streams.
    CacheLine l;
    SecureCounterMemory every(key(), 1);
    SecureCounterMemory lazy(key(), 8);
    for (int i = 0; i < 800; ++i) {
        every.write(0, l);
        lazy.write(0, l);
    }
    EXPECT_EQ(every.counterPersists(), 800u);
    EXPECT_LE(lazy.counterPersists(), 101u);
}

/** Property sweep: random workload, crash at a random point, full
 * recovery, all contents intact. */
class SecureMemoryCrashTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SecureMemoryCrashTest, CrashAnywhereRecoversEverything)
{
    SecureCounterMemory mem(key(), 6);
    Pcg32 rng(100 + GetParam());
    std::unordered_map<Addr, CacheLine> expect;
    int ops = 200 + static_cast<int>(rng.below(800));
    for (int i = 0; i < ops; ++i) {
        Addr addr = static_cast<Addr>(rng.below(32)) * kLineSize;
        CacheLine data = randomLine(rng);
        mem.write(addr, data);
        expect[addr] = data;
    }
    mem.crash();
    RecoveryReport rep = mem.recover();
    ASSERT_TRUE(rep.ok());
    for (const auto &[addr, want] : expect) {
        CacheLine out;
        ASSERT_TRUE(mem.read(addr, out));
        EXPECT_EQ(out, want);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureMemoryCrashTest,
                         ::testing::Range(0, 10));

} // namespace
} // namespace esd
