/**
 * @file
 * Integration tests for the full CPU-to-NVMM stack (hierarchy +
 * scheme + device).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/cpu_system.hh"

namespace esd
{
namespace
{

SimConfig
smallStack()
{
    SimConfig cfg;
    // Shrink the hierarchy so evictions happen quickly in tests.
    cfg.cache.l1Size = 8 * kLineSize;
    cfg.cache.l2Size = 32 * kLineSize;
    cfg.cache.l3Size = 128 * kLineSize;
    cfg.pcm.channels = 1;
    return cfg;
}

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    return l;
}

TEST(CpuSystem, LoadAfterStoreThroughCaches)
{
    CpuSystem sys(smallStack(), SchemeKind::Esd);
    sys.store(0, lineWith(42));
    CpuAccessResult r = sys.load(0);
    EXPECT_EQ(r.data.word(0), 42u);
    EXPECT_EQ(r.hitLevel, 1u);
}

TEST(CpuSystem, DataSurvivesFullEvictionToNvmm)
{
    CpuSystem sys(smallStack(), SchemeKind::Esd);
    sys.store(0, lineWith(0xabcd));
    // Flood far beyond L3 capacity to force the line to NVMM.
    for (std::uint64_t i = 1; i < 2048; ++i)
        sys.store(i * kLineSize, lineWith(i));
    CpuAccessResult r = sys.load(0);
    EXPECT_EQ(r.data.word(0), 0xabcdu);
    EXPECT_EQ(r.hitLevel, 4u);  // came back from memory
    EXPECT_GT(sys.scheme().stats().logicalWrites.value(), 0u);
}

TEST(CpuSystem, WorksForEverySchemeKind)
{
    for (SchemeKind k : allSchemeKinds()) {
        CpuSystem sys(smallStack(), k);
        Pcg32 rng(7);
        std::unordered_map<Addr, std::uint64_t> expect;
        for (int i = 0; i < 3000; ++i) {
            Addr addr = static_cast<Addr>(rng.below(1024)) * kLineSize;
            std::uint64_t v = rng.below(16);  // duplicate-rich
            sys.store(addr, lineWith(v));
            expect[addr] = v;
        }
        for (const auto &[addr, v] : expect) {
            EXPECT_EQ(sys.load(addr).data.word(0), v)
                << schemeName(k) << " addr " << addr;
        }
    }
}

TEST(CpuSystem, DuplicateHeavyStoresDedupInEsd)
{
    CpuSystem sys(smallStack(), SchemeKind::Esd);
    // All stores carry identical content -> evictions dedup.
    for (std::uint64_t i = 0; i < 4096; ++i)
        sys.store(i * kLineSize, lineWith(7));
    EXPECT_GT(sys.scheme().stats().dedupHits.value(), 0u);
    EXPECT_LT(sys.scheme().stats().nvmDataWrites.value(),
              sys.scheme().stats().logicalWrites.value());
}

TEST(CpuSystem, ClockAdvances)
{
    CpuSystem sys(smallStack(), SchemeKind::Baseline);
    double t0 = sys.nowNs();
    sys.load(0);
    EXPECT_GT(sys.nowNs(), t0);
    sys.tick(100);
    EXPECT_GE(sys.nowNs(), t0 + 100);
}

} // namespace
} // namespace esd
