/**
 * @file
 * End-to-end observability tests: a real simulated run must produce a
 * parseable stats-JSON report with entries from every layer (scheme,
 * EFIT, metadata caches, PCM banks), interval snapshots, and a JSONL
 * event trace whose records carry the EFIT outcome and bank queue
 * wait — the `esd_sim -stats-json= -trace-out=` contract.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/write_trace.hh"
#include "core/cpu_system.hh"
#include "core/run_report.hh"
#include "core/simulator.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.banksPerRank = 4;
    return cfg;
}

TEST(Observability, StatsReportCoversEveryLayer)
{
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    sim.enableIntervalSampling(1000);

    SyntheticWorkload trace(findApp("gcc"), 1);
    RunResult r = sim.run(trace, 20000, 2000);

    std::ostringstream os;
    writeStatsReport(os, cfg, r, sim.statRegistry(), &sim.sampler());

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(tryParseJson(os.str(), doc, &err)) << err;

    // Top-level sections.
    for (const char *k : {"config", "result", "stats", "intervals"})
        ASSERT_NE(doc.find(k), nullptr) << k;

    // Config round-trips key parameters.
    const JsonValue *pcm = doc.find("config")->find("pcm");
    ASSERT_NE(pcm, nullptr);
    EXPECT_EQ(pcm->find("write_latency_ns")->number, 150.0);

    // Result mirrors the RunResult.
    const JsonValue *res = doc.find("result");
    EXPECT_EQ(res->find("scheme")->str, "ESD");
    EXPECT_EQ(res->find("records")->number,
              static_cast<double>(r.records));
    EXPECT_GT(res->find("write_latency")->find("count")->number, 0.0);

    // Stats carry hierarchically named entries from every layer.
    const JsonValue *stats = doc.find("stats");
    ASSERT_TRUE(stats->isObject());
    for (const char *name :
         {"scheme.logical_writes", "scheme.dedup_hits",
          "scheme.write_latency", "esd.efit.hits", "esd.efit.occupancy",
          "cache.amt.hit_rate", "pcm.writes", "pcm.bank0.writes",
          "pcm.bank3.queue_wait_ns"})
        ASSERT_NE(stats->find(name), nullptr) << name;

    EXPECT_EQ(stats->find("scheme.logical_writes")->number,
              static_cast<double>(r.logicalWrites));

    // Interval snapshots: rows sampled every 1000 measured writes.
    const JsonValue *iv = doc.find("intervals");
    EXPECT_EQ(iv->find("every_writes")->number, 1000.0);
    ASSERT_GT(iv->find("rows")->array.size(), 0u);
    EXPECT_EQ(iv->find("columns")->array.size(),
              iv->find("rows")->array[0].array.size());
}

TEST(Observability, EventTraceRecordsCarryEfitOutcomeAndQueueWait)
{
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    WriteEventTrace events(4096);
    sim.setEventTrace(&events);

    SyntheticWorkload trace(findApp("deepsjeng"), 1);
    RunResult r = sim.run(trace, 10000, 0);

    // Every logical write produced exactly one event.
    EXPECT_EQ(events.totalRecorded(), r.logicalWrites);
    ASSERT_GT(events.size(), 0u);

    std::ostringstream os;
    events.writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    bool saw_hit = false, saw_dedup = false, saw_queue_wait = false;
    while (std::getline(is, line)) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(tryParseJson(line, v, &err)) << err;
        ASSERT_NE(v.find("efit"), nullptr);
        ASSERT_NE(v.find("queue_ns"), nullptr);
        ASSERT_NE(v.find("bank"), nullptr);
        EXPECT_LT(v.find("bank")->number, cfg.pcm.totalBanks());
        saw_hit |= v.find("efit")->str == "hit";
        saw_dedup |= v.find("outcome")->str == "dedup";
        saw_queue_wait |= v.find("queue_ns")->number > 0;
    }
    // A dedup-heavy workload must show EFIT hits and dedup outcomes,
    // and a single-channel config must queue at banks.
    EXPECT_TRUE(saw_hit);
    EXPECT_TRUE(saw_dedup);
    EXPECT_TRUE(saw_queue_wait);
}

TEST(Observability, DetachedTraceRecordsNothing)
{
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    WriteEventTrace events(64);
    sim.setEventTrace(&events);
    sim.setEventTrace(nullptr);

    SyntheticWorkload trace(findApp("gcc"), 1);
    sim.run(trace, 2000, 0);
    EXPECT_EQ(events.totalRecorded(), 0u);
}

TEST(Observability, EverySchemeEmitsOneEventPerWrite)
{
    for (SchemeKind k :
         {SchemeKind::Baseline, SchemeKind::DedupSha1, SchemeKind::DeWrite,
          SchemeKind::Esd, SchemeKind::EsdFull, SchemeKind::EsdPlus}) {
        SimConfig cfg = fastConfig();
        Simulator sim(cfg, k);
        WriteEventTrace events(1 << 14);
        sim.setEventTrace(&events);
        SyntheticWorkload trace(findApp("gcc"), 1);
        RunResult r = sim.run(trace, 5000, 0);
        EXPECT_EQ(events.totalRecorded(), r.logicalWrites)
            << schemeName(k);
    }
}

TEST(Observability, RegistryNamesAreUniquePerScheme)
{
    // Constructing a Simulator registers every component; a duplicate
    // name would panic in the constructor.
    for (SchemeKind k :
         {SchemeKind::Baseline, SchemeKind::DedupSha1, SchemeKind::DeWrite,
          SchemeKind::Esd, SchemeKind::EsdFull, SchemeKind::EsdPlus}) {
        Simulator sim(fastConfig(), k);
        EXPECT_GT(sim.statRegistry().size(), 0u) << schemeName(k);
    }
}

TEST(Observability, StatsStayLiveAcrossMeasurementReset)
{
    // The registry holds references; resetStats() assigns in place, so
    // a warmed-up run's registry must match the RunResult, not the
    // pre-warmup totals.
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    SyntheticWorkload trace(findApp("gcc"), 1);
    RunResult r = sim.run(trace, 20000, 10000);

    const StatRegistry &reg = sim.statRegistry();
    EXPECT_EQ(reg.scalar("scheme.logical_writes"),
              static_cast<double>(r.logicalWrites));
    EXPECT_EQ(reg.scalar("scheme.dedup_hits"),
              static_cast<double>(r.dedupHits));
    EXPECT_EQ(reg.scalar("pcm.writes"),
              static_cast<double>(r.nvmWritesTotal));
}

TEST(Observability, CpuSystemRegistersCacheHierarchy)
{
    CpuSystem sys(fastConfig(), SchemeKind::Esd);
    const StatRegistry &reg = sys.statRegistry();
    for (const char *name :
         {"cache.l1.hits", "cache.l2.misses", "cache.l3.hit_rate",
          "cache.amt.cache_hits", "esd.efit.hits", "pcm.reads"})
        EXPECT_TRUE(reg.has(name)) << name;

    CacheLine data;
    data.setWord(0, 1);
    sys.store(0x1000, data);
    sys.load(0x1000);
    EXPECT_GT(reg.scalar("cache.l1.hits"), 0.0);
}

} // namespace
} // namespace esd
