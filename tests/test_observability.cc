/**
 * @file
 * End-to-end observability tests: a real simulated run must produce a
 * parseable stats-JSON report with entries from every layer (scheme,
 * EFIT, metadata caches, PCM banks), interval snapshots, and a JSONL
 * event trace whose records carry the EFIT outcome and bank queue
 * wait — the `esd_sim -stats-json= -trace-out=` contract.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/write_trace.hh"
#include "core/cpu_system.hh"
#include "core/run_report.hh"
#include "core/simulator.hh"
#include "metrics/prometheus.hh"
#include "metrics/span_trace.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.banksPerRank = 4;
    return cfg;
}

TEST(Observability, StatsReportCoversEveryLayer)
{
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    sim.enableIntervalSampling(1000);

    SyntheticWorkload trace(findApp("gcc"), 1);
    RunResult r = sim.run(trace, 20000, 2000);

    std::ostringstream os;
    writeStatsReport(os, cfg, r, sim.statRegistry(), &sim.sampler());

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(tryParseJson(os.str(), doc, &err)) << err;

    // Top-level sections.
    for (const char *k : {"config", "result", "stats", "intervals"})
        ASSERT_NE(doc.find(k), nullptr) << k;

    // Config round-trips key parameters.
    const JsonValue *pcm = doc.find("config")->find("pcm");
    ASSERT_NE(pcm, nullptr);
    EXPECT_EQ(pcm->find("write_latency_ns")->number, 150.0);

    // Result mirrors the RunResult.
    const JsonValue *res = doc.find("result");
    EXPECT_EQ(res->find("scheme")->str, "ESD");
    EXPECT_EQ(res->find("records")->number,
              static_cast<double>(r.records));
    EXPECT_GT(res->find("write_latency")->find("count")->number, 0.0);

    // Stats carry hierarchically named entries from every layer.
    const JsonValue *stats = doc.find("stats");
    ASSERT_TRUE(stats->isObject());
    for (const char *name :
         {"scheme.logical_writes", "scheme.dedup_hits",
          "scheme.write_latency", "esd.efit.hits", "esd.efit.occupancy",
          "cache.amt.hit_rate", "pcm.writes", "pcm.bank0.writes",
          "pcm.bank3.queue_wait_ns"})
        ASSERT_NE(stats->find(name), nullptr) << name;

    EXPECT_EQ(stats->find("scheme.logical_writes")->number,
              static_cast<double>(r.logicalWrites));

    // Interval snapshots: rows sampled every 1000 measured writes.
    const JsonValue *iv = doc.find("intervals");
    EXPECT_EQ(iv->find("every_writes")->number, 1000.0);
    ASSERT_GT(iv->find("rows")->array.size(), 0u);
    EXPECT_EQ(iv->find("columns")->array.size(),
              iv->find("rows")->array[0].array.size());
}

TEST(Observability, EventTraceRecordsCarryEfitOutcomeAndQueueWait)
{
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    WriteEventTrace events(4096);
    sim.setEventTrace(&events);

    SyntheticWorkload trace(findApp("deepsjeng"), 1);
    RunResult r = sim.run(trace, 10000, 0);

    // Every logical write produced exactly one event.
    EXPECT_EQ(events.totalRecorded(), r.logicalWrites);
    ASSERT_GT(events.size(), 0u);

    std::ostringstream os;
    events.writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    bool saw_hit = false, saw_dedup = false, saw_queue_wait = false;
    while (std::getline(is, line)) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(tryParseJson(line, v, &err)) << err;
        ASSERT_NE(v.find("efit"), nullptr);
        ASSERT_NE(v.find("queue_ns"), nullptr);
        ASSERT_NE(v.find("bank"), nullptr);
        EXPECT_LT(v.find("bank")->number, cfg.pcm.totalBanks());
        saw_hit |= v.find("efit")->str == "hit";
        saw_dedup |= v.find("outcome")->str == "dedup";
        saw_queue_wait |= v.find("queue_ns")->number > 0;
    }
    // A dedup-heavy workload must show EFIT hits and dedup outcomes,
    // and a single-channel config must queue at banks.
    EXPECT_TRUE(saw_hit);
    EXPECT_TRUE(saw_dedup);
    EXPECT_TRUE(saw_queue_wait);
}

TEST(Observability, DetachedTraceRecordsNothing)
{
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    WriteEventTrace events(64);
    sim.setEventTrace(&events);
    sim.setEventTrace(nullptr);

    SyntheticWorkload trace(findApp("gcc"), 1);
    sim.run(trace, 2000, 0);
    EXPECT_EQ(events.totalRecorded(), 0u);
}

TEST(Observability, EverySchemeEmitsOneEventPerWrite)
{
    for (SchemeKind k :
         {SchemeKind::Baseline, SchemeKind::DedupSha1, SchemeKind::DeWrite,
          SchemeKind::Esd, SchemeKind::EsdFull, SchemeKind::EsdPlus}) {
        SimConfig cfg = fastConfig();
        Simulator sim(cfg, k);
        WriteEventTrace events(1 << 14);
        sim.setEventTrace(&events);
        SyntheticWorkload trace(findApp("gcc"), 1);
        RunResult r = sim.run(trace, 5000, 0);
        EXPECT_EQ(events.totalRecorded(), r.logicalWrites)
            << schemeName(k);
    }
}

TEST(Observability, RegistryNamesAreUniquePerScheme)
{
    // Constructing a Simulator registers every component; a duplicate
    // name would panic in the constructor.
    for (SchemeKind k :
         {SchemeKind::Baseline, SchemeKind::DedupSha1, SchemeKind::DeWrite,
          SchemeKind::Esd, SchemeKind::EsdFull, SchemeKind::EsdPlus}) {
        Simulator sim(fastConfig(), k);
        EXPECT_GT(sim.statRegistry().size(), 0u) << schemeName(k);
    }
}

TEST(Observability, StatsStayLiveAcrossMeasurementReset)
{
    // The registry holds references; resetStats() assigns in place, so
    // a warmed-up run's registry must match the RunResult, not the
    // pre-warmup totals.
    SimConfig cfg = fastConfig();
    Simulator sim(cfg, SchemeKind::Esd);
    SyntheticWorkload trace(findApp("gcc"), 1);
    RunResult r = sim.run(trace, 20000, 10000);

    const StatRegistry &reg = sim.statRegistry();
    EXPECT_EQ(reg.scalar("scheme.logical_writes"),
              static_cast<double>(r.logicalWrites));
    EXPECT_EQ(reg.scalar("scheme.dedup_hits"),
              static_cast<double>(r.dedupHits));
    EXPECT_EQ(reg.scalar("pcm.writes"),
              static_cast<double>(r.nvmWritesTotal));
}

TEST(SpanTrace, CapacityBoundsAndSamplingStreams)
{
    SpanTrace spans(/*capacity=*/2, /*sample_every=*/2);
    // Independent admission streams: writes and accesses each admit
    // their own every-2nd event.
    EXPECT_TRUE(spans.admitWrite());
    EXPECT_FALSE(spans.admitWrite());
    EXPECT_TRUE(spans.admitAccess());
    EXPECT_FALSE(spans.admitAccess());
    EXPECT_TRUE(spans.admitWrite());

    spans.span(SpanTrace::kPipelineTrack, "a", 0, 10);
    spans.span(SpanTrace::kPipelineTrack, "b", 10, 10);
    spans.span(SpanTrace::kPipelineTrack, "c", 20, 10);  // over cap
    EXPECT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans.dropped(), 1u);
    EXPECT_EQ(spans.totalRecorded(), 3u);

    spans.clear();
    EXPECT_EQ(spans.size(), 0u);
    EXPECT_EQ(spans.dropped(), 0u);
    EXPECT_TRUE(spans.admitWrite());  // streams restart after clear
}

TEST(SpanTrace, ChromeJsonIsValidTraceEventFormat)
{
    SpanTrace spans(64, 1);
    spans.span(SpanTrace::kPipelineTrack, "write", 100, 250,
               {SpanTrace::str("outcome", "dedup"),
                SpanTrace::hex("fp", 0xabcd),
                SpanTrace::num("bank", 3)});
    spans.span(SpanTrace::channelTrack(0), "read", 120, 75);
    spans.instant(SpanTrace::channelTrack(1), "coalesced", 130);

    std::ostringstream os;
    spans.writeChromeJson(os);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(tryParseJson(os.str(), doc, &err)) << err;

    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Metadata: process name + one thread_name per used track.
    std::size_t meta = 0, complete = 0, instants = 0;
    for (const JsonValue &e : events->array) {
        const std::string &ph = e.find("ph")->str;
        if (ph == "M") {
            ++meta;
        } else if (ph == "X") {
            ++complete;
            ASSERT_NE(e.find("dur"), nullptr);
        } else if (ph == "i") {
            ++instants;
        }
    }
    EXPECT_EQ(meta, 4u);  // process_name + 3 thread_names
    EXPECT_EQ(complete, 2u);
    EXPECT_EQ(instants, 1u);

    // The parent span round-trips its args; ts is us (ns / 1000).
    const JsonValue *write = nullptr;
    for (const JsonValue &e : events->array)
        if (e.find("name")->str == "write")
            write = &e;
    ASSERT_NE(write, nullptr);
    EXPECT_DOUBLE_EQ(write->find("ts")->number, 0.1);
    EXPECT_DOUBLE_EQ(write->find("dur")->number, 0.25);
    const JsonValue *args = write->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("outcome")->str, "dedup");
    EXPECT_EQ(args->find("fp")->str, "0xabcd");
    EXPECT_DOUBLE_EQ(args->find("bank")->number, 3.0);
}

TEST(SpanTrace, SimulatorRunEmitsPipelineAndChannelSpans)
{
    SimConfig cfg = fastConfig();
    cfg.channels.count = 2;
    // ECC fingerprints are free by default (the paper's Section III-C
    // assumption); give them a visible cost so the "fingerprint"
    // child slice is emitted deterministically.
    cfg.crypto.eccLatency = 4;
    Simulator sim(cfg, SchemeKind::Esd);

    SpanTrace spans(1u << 16, 1);
    sim.setSpanTrace(&spans);

    SyntheticWorkload trace(findApp("lbm"), 1);
    sim.run(trace, 5000, 500);
    ASSERT_GT(spans.size(), 0u);

    std::ostringstream os;
    spans.writeChromeJson(os);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(tryParseJson(os.str(), doc, &err)) << err;

    // Both the pipeline track and at least one channel track emitted,
    // and the pipeline carries the phase child slices.
    bool pipeline = false, channel = false, slice = false;
    for (const JsonValue &e : doc.find("traceEvents")->array) {
        if (e.find("ph")->str != "X")
            continue;
        double tid = e.find("tid")->number;
        if (tid == 0.0)
            pipeline = true;
        else
            channel = true;
        if (e.find("name")->str == "fingerprint")
            slice = true;
    }
    EXPECT_TRUE(pipeline);
    EXPECT_TRUE(channel);
    EXPECT_TRUE(slice);
}

TEST(Prometheus, NameSanitization)
{
    EXPECT_EQ(prometheusName("pcm.ch0.reads"), "esd_pcm_ch0_reads");
    EXPECT_EQ(prometheusName("scheme.write_latency"),
              "esd_scheme_write_latency");
    EXPECT_EQ(prometheusName("weird-name+x"), "esd_weird_name_x");
}

TEST(Prometheus, TextExpositionCoversEveryKind)
{
    StatRegistry reg;
    Counter hits;
    hits.inc(42);
    reg.addCounter("scheme.dedup_hits", hits, "writes eliminated");
    reg.addGauge("scheme.dedup_rate", [] { return 0.5; });
    LatencyStat lat;
    for (int i = 1; i <= 100; ++i)
        lat.sample(i);
    reg.addLatency("scheme.write_latency", lat);

    std::ostringstream os;
    writePrometheusText(os, reg);
    std::string text = os.str();

    EXPECT_NE(text.find("# TYPE esd_scheme_dedup_hits counter"),
              std::string::npos);
    EXPECT_NE(text.find("# HELP esd_scheme_dedup_hits "
                        "writes eliminated"),
              std::string::npos);
    EXPECT_NE(text.find("esd_scheme_dedup_hits 42"), std::string::npos);
    EXPECT_NE(text.find("# TYPE esd_scheme_dedup_rate gauge"),
              std::string::npos);
    EXPECT_NE(text.find("esd_scheme_dedup_rate 0.5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE esd_scheme_write_latency summary"),
              std::string::npos);
    // Exact-histogram quantiles: p50 of 1..100 is exactly 50.
    EXPECT_NE(text.find("esd_scheme_write_latency{quantile=\"0.5\"} 50"),
              std::string::npos);
    EXPECT_NE(text.find("esd_scheme_write_latency_count 100"),
              std::string::npos);
    EXPECT_NE(text.find("esd_scheme_write_latency_sum 5050"),
              std::string::npos);
}

TEST(Observability, CpuSystemRegistersCacheHierarchy)
{
    CpuSystem sys(fastConfig(), SchemeKind::Esd);
    const StatRegistry &reg = sys.statRegistry();
    for (const char *name :
         {"cache.l1.hits", "cache.l2.misses", "cache.l3.hit_rate",
          "cache.amt.cache_hits", "esd.efit.hits", "pcm.reads"})
        EXPECT_TRUE(reg.has(name)) << name;

    CacheLine data;
    data.setWord(0, 1);
    sys.store(0x1000, data);
    sys.load(0x1000);
    EXPECT_GT(reg.scalar("cache.l1.hits"), 0.0);
}

} // namespace
} // namespace esd
