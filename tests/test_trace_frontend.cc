/**
 * @file
 * Streaming trace frontend: capture/replay bit-identity and format
 * equivalence.
 *
 * The headline guarantee of trace/trace_frontend.hh is that a captured
 * synthetic run replays bit-identically: the stats-JSON document of
 * the replay equals the original byte for byte, for every scheme, in
 * every on-disk format, at any pipeline worker count, and composed
 * with crash injection. These tests pin each leg of that claim, plus
 * the constant-memory property (the decoded-record buffer never
 * exceeds [trace] read_ahead) and the deterministic content synthesis
 * for payload-less traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_report.hh"
#include "core/simulator.hh"
#include "exec/pipeline.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_frontend.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

constexpr std::uint64_t kRecords = 8000;
constexpr std::uint64_t kWarmup = 1500;
constexpr std::uint64_t kSeed = 7;

class TraceFrontendTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("esd_frontend_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    file(const char *name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

/** The exact esd_sim single-run report for @p trace. */
std::string
renderRun(const SimConfig &cfg, SchemeKind kind, TraceSource &trace,
          std::uint64_t records, std::uint64_t warmup)
{
    Simulator sim(cfg, kind);
    RunResult r = sim.run(trace, records, warmup);
    std::ostringstream os;
    writeStatsReport(os, cfg, r, sim.statRegistry(), nullptr);
    return os.str();
}

/** Capture a synthetic run to @p path and return its report. */
std::string
captureRun(const SimConfig &cfg, SchemeKind kind,
           const std::string &path, TraceFormat format)
{
    TraceConfig tc = cfg.trace;
    tc.format = format;
    TraceCaptureWriter writer(path, tc);
    SyntheticWorkload synth(findApp("mcf"), kSeed);
    CapturingSource tee(synth, writer);
    std::string rep = renderRun(cfg, kind, tee, kRecords, kWarmup);
    writer.close();
    EXPECT_EQ(writer.count(), kRecords);
    return rep;
}

/** Drain a frontend into a vector (payload compare helper). */
std::vector<TraceRecord>
drain(const std::string &path, std::uint64_t read_ahead = 4096)
{
    TraceConfig tc;
    tc.readAhead = read_ahead;
    TraceFrontend f(path, tc);
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (f.next(rec))
        out.push_back(rec);
    return out;
}

void
expectSameRecords(const std::vector<TraceRecord> &a,
                  const std::vector<TraceRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op) << "record " << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << "record " << i;
        EXPECT_EQ(a[i].icount, b[i].icount) << "record " << i;
        if (a[i].op == OpType::Write) {
            EXPECT_EQ(a[i].data, b[i].data) << "record " << i;
        }
    }
}

// ---------------------------------------------- capture -> replay

class CaptureReplayIdentity : public TraceFrontendTest,
                              public ::testing::WithParamInterface<int>
{
};

/** Capture -> replay must reproduce the stats JSON byte for byte, per
 * scheme. Schemes read different amounts of state (dedup tables, AMT,
 * counters), so identity per scheme pins the whole record stream —
 * ops, addresses, payloads, and icounts. */
TEST_P(CaptureReplayIdentity, StatsJsonByteIdentical)
{
    SchemeKind kind = allSchemeKindsExtended()[GetParam()];
    SimConfig cfg;
    cfg.seed = kSeed;
    std::string path = file("cap.trace");
    std::string original =
        captureRun(cfg, kind, path, TraceFormat::Text);

    TraceFrontend replay(path, cfg.trace);
    EXPECT_EQ(replay.format(), TraceFormat::Text);
    std::string replayed =
        renderRun(cfg, kind, replay, kRecords, kWarmup);
    EXPECT_EQ(original, replayed);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CaptureReplayIdentity,
                         ::testing::Range(0, 6));

/** The same identity through each on-disk encoding: the format is a
 * transport, never a semantic. */
TEST_F(TraceFrontendTest, ReplayIdenticalInEveryFormat)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    struct Case
    {
        TraceFormat format;
        const char *name;
    } cases[] = {{TraceFormat::Text, "t.trace"},
                 {TraceFormat::Gzip, "t.gz"},
                 {TraceFormat::Binary, "t.bin"}};

    std::string original;
    for (const Case &c : cases) {
        std::string path = file(c.name);
        std::string rep =
            captureRun(cfg, SchemeKind::Esd, path, c.format);
        if (original.empty())
            original = rep;
        else
            EXPECT_EQ(original, rep);

        TraceFrontend replay(path, cfg.trace);
        EXPECT_EQ(replay.format(), c.format);
        EXPECT_EQ(original, renderRun(cfg, SchemeKind::Esd, replay,
                                      kRecords, kWarmup));
    }
}

// ---------------------------------------------- format round trips

TEST_F(TraceFrontendTest, ConvertRoundTripPreservesRecords)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    std::string text1 = file("a.trace");
    captureRun(cfg, SchemeKind::Baseline, text1, TraceFormat::Text);
    std::vector<TraceRecord> want = drain(text1);
    ASSERT_EQ(want.size(), kRecords);

    // text -> binary -> gzip -> text: every hop preserves the stream.
    std::string bin = file("a.bin");
    std::string gz = file("a.gz");
    std::string text2 = file("a2.trace");
    EXPECT_EQ(convertTrace(text1, bin, TraceFormat::Binary, true),
              kRecords);
    EXPECT_EQ(convertTrace(bin, gz, TraceFormat::Gzip, true), kRecords);
    EXPECT_EQ(convertTrace(gz, text2, TraceFormat::Text, true),
              kRecords);

    expectSameRecords(want, drain(bin));
    expectSameRecords(want, drain(gz));
    expectSameRecords(want, drain(text2));

    // The final text re-encoding is byte-identical to the first: the
    // writer is canonical, so text -> ... -> text is a fixed point.
    std::ifstream f1(text1, std::ios::binary), f2(text2,
                                                  std::ios::binary);
    std::ostringstream b1, b2;
    b1 << f1.rdbuf();
    b2 << f2.rdbuf();
    EXPECT_EQ(b1.str(), b2.str());

    EXPECT_EQ(detectTraceFormat(text1), TraceFormat::Text);
    EXPECT_EQ(detectTraceFormat(bin), TraceFormat::Binary);
    EXPECT_EQ(detectTraceFormat(gz), TraceFormat::Gzip);
}

/** Gzip'd *binary* also replays: the sniffer runs again inside the
 * inflated stream. Composed manually — the capture writer's Gzip mode
 * compresses text. */
TEST_F(TraceFrontendTest, GzippedBinaryReplays)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    std::string bin = file("b.bin");
    captureRun(cfg, SchemeKind::DeWrite, bin, TraceFormat::Binary);
    std::vector<TraceRecord> want = drain(bin);

    std::string gz = file("b.bin.gz");
    {
        detail::GzipByteSink sink(
            std::make_unique<detail::FileByteSink>(gz));
        std::ifstream in(bin, std::ios::binary);
        char buf[4096];
        while (in.read(buf, sizeof buf) || in.gcount() > 0)
            sink.write(reinterpret_cast<const std::uint8_t *>(buf),
                       static_cast<std::size_t>(in.gcount()));
        sink.finish();
    }

    EXPECT_EQ(detectTraceFormat(gz), TraceFormat::Gzip);
    expectSameRecords(want, drain(gz));
}

// ---------------------------------------------- pipeline composition

/** Replay through the sharded pipeline: the pipeline report is
 * byte-identical at 1, 2, and 8 workers when fed from a file. */
TEST_F(TraceFrontendTest, ReplayUnderPipelineWorkersIsIdentical)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    cfg.channels.count = 8;
    std::string path = file("p.trace");
    captureRun(cfg, SchemeKind::Esd, path, TraceFormat::Text);

    std::string first;
    for (unsigned workers : {1u, 2u, 8u}) {
        TraceFrontend replay(path, cfg.trace);
        exec::ShardedPipeline sharded(cfg, SchemeKind::Esd, workers);
        sharded.run(replay, kRecords, kWarmup);
        std::ostringstream os;
        sharded.writeReport(os);
        if (first.empty())
            first = os.str();
        else
            EXPECT_EQ(first, os.str())
                << "pipeline report diverged at " << workers
                << " workers";
    }
}

/** Replay composes with [persistence] crash injection: the injected
 * crash fires at the configured write index and recovery off the
 * crashed image passes the pipeline's own self-check. */
TEST_F(TraceFrontendTest, ReplayWithCrashInjectionRecovers)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    std::string path = file("c.trace");
    captureRun(cfg, SchemeKind::Esd, path, TraceFormat::Binary);

    cfg.persist.enabled = true;
    cfg.persist.crashAtWrite = 400;
    TraceFrontend replay(path, cfg.trace);
    exec::ShardedPipeline sharded(cfg, SchemeKind::Esd, 2);
    sharded.run(replay, kRecords, kWarmup);
    EXPECT_EQ(sharded.checkInjectedCrash(), "");
}

// ---------------------------------------------- streaming properties

TEST_F(TraceFrontendTest, BoundedReadAheadOnLargeTrace)
{
    // 200k records through a 64-record window: the decoded-record
    // high-water mark must honor the bound whatever the trace length.
    std::string path = file("big.bin");
    TraceConfig wc;
    wc.format = TraceFormat::Binary;
    {
        TraceCaptureWriter writer(path, wc);
        SyntheticWorkload synth(findApp("lbm"), 3);
        TraceRecord rec;
        for (int i = 0; i < 200000; ++i) {
            ASSERT_TRUE(synth.next(rec));
            writer.write(rec);
        }
    }
    TraceConfig tc;
    tc.readAhead = 64;
    TraceFrontend f(path, tc);
    TraceRecord rec;
    std::uint64_t n = 0;
    while (f.next(rec))
        ++n;
    EXPECT_EQ(n, 200000u);
    EXPECT_EQ(f.recordsDecoded(), 200000u);
    EXPECT_LE(f.peakBufferedRecords(), 64u);
    EXPECT_GT(f.peakBufferedRecords(), 0u);
}

TEST_F(TraceFrontendTest, ResetRestartsIncludingSynthesisState)
{
    // An address-only trace synthesizes write content from the global
    // write index; reset() must rewind that index too, or the second
    // pass would see different data.
    std::string path = file("r.trace");
    {
        std::ofstream out(path);
        out << "W 1000 5\nW 2000 5\nR 1000 5\nW 1000 5\n";
    }
    TraceConfig tc;
    TraceFrontend f(path, tc);
    std::vector<TraceRecord> pass1, pass2;
    TraceRecord rec;
    while (f.next(rec))
        pass1.push_back(rec);
    f.reset();
    while (f.next(rec))
        pass2.push_back(rec);
    expectSameRecords(pass1, pass2);
    ASSERT_EQ(pass1.size(), 4u);
    // Same address written twice gets different synthesized content
    // (the write index advances), so replay is not trivially all-dups.
    EXPECT_FALSE(pass1[0].data == pass1[3].data);
    EXPECT_EQ(f.recordsDecoded(), 8u);  // monotonic across reset
}

TEST_F(TraceFrontendTest, SynthesizedContentIsPureInAddrAndIndex)
{
    CacheLine a = synthesizeLineContent(0x1000, 0);
    CacheLine b = synthesizeLineContent(0x1000, 0);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == synthesizeLineContent(0x1000, 1));
    EXPECT_FALSE(a == synthesizeLineContent(0x1040, 0));
}

// ---------------------------------------------- format tolerance

TEST_F(TraceFrontendTest, RamulatorTokenOrderAndDefaults)
{
    std::string path = file("ram.trace");
    {
        std::ofstream out(path);
        out << "# a ramulator-style fragment\n"
            << "46b100 W\n"          // icount defaults to 100
            << "deadbeef R 40\n"     // explicit icount
            << "\r\n"                // blank CRLF line
            << "R cafe0 7\r\n";      // canonical order, CRLF
    }
    std::vector<TraceRecord> recs = drain(path);
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].op, OpType::Write);
    EXPECT_EQ(recs[0].addr, 0x46b100u);
    EXPECT_EQ(recs[0].icount, 100u);
    EXPECT_EQ(recs[1].op, OpType::Read);
    EXPECT_EQ(recs[1].addr, 0xdeadbeefu);
    EXPECT_EQ(recs[1].icount, 40u);
    EXPECT_EQ(recs[2].addr, 0xcafe0u);
    EXPECT_EQ(recs[2].icount, 7u);
}

TEST_F(TraceFrontendTest, LegacyV1BinaryStillDecodes)
{
    std::string path = file("v1.bin");
    std::vector<TraceRecord> want(64);
    {
        BinaryTraceWriter writer(path);
        SyntheticWorkload synth(findApp("mcf"), 11);
        for (TraceRecord &r : want) {
            ASSERT_TRUE(synth.next(r));
            writer.write(r);
        }
    }
    TraceConfig tc;
    TraceFrontend f(path, tc);
    EXPECT_EQ(f.format(), TraceFormat::Binary);
    std::vector<TraceRecord> got;
    TraceRecord rec;
    while (f.next(rec))
        got.push_back(rec);
    expectSameRecords(want, got);
}

/** Stripped traces (-payload=false) replay deterministically: two
 * replays agree, and re-capturing a replay reproduces the stripped
 * file byte for byte. */
TEST_F(TraceFrontendTest, PayloadlessCaptureReplaysDeterministically)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    std::string full = file("f.trace");
    captureRun(cfg, SchemeKind::Baseline, full, TraceFormat::Text);
    std::string stripped = file("s.trace");
    EXPECT_EQ(convertTrace(full, stripped, TraceFormat::Text, false),
              kRecords);

    std::vector<TraceRecord> pass1 = drain(stripped);
    std::vector<TraceRecord> pass2 = drain(stripped);
    expectSameRecords(pass1, pass2);

    // Round-trip the stripped stream through capture again: identical
    // bytes, so stripped traces are stable archival artifacts.
    std::string again = file("s2.trace");
    EXPECT_EQ(convertTrace(stripped, again, TraceFormat::Text, false),
              kRecords);
    std::ifstream f1(stripped, std::ios::binary),
        f2(again, std::ios::binary);
    std::ostringstream b1, b2;
    b1 << f1.rdbuf();
    b2 << f2.rdbuf();
    EXPECT_EQ(b1.str(), b2.str());
}

} // namespace
} // namespace esd
