/**
 * @file
 * Differential model checking: every scheme, under long randomized
 * write/read soups drawn from adversarial content distributions
 * (zero lines, tiny duplicate pools, random uniques, value toggling),
 * must agree with a trivial reference memory at every read. This is
 * the strongest correctness net over the dedup machinery: any
 * refcount, remap, EFIT-staleness, or encryption bug surfaces as a
 * mismatch.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.hh"
#include "core/simulator.hh"

namespace esd
{
namespace
{

SimConfig
cfg()
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    // Tiny metadata caches maximise eviction/staleness pressure.
    c.metadata.efitCacheBytes = 64 * 16;
    c.metadata.amtCacheBytes = 8 * kLineSize;
    c.metadata.referHMax = 7;  // force frequent saturation rewrites
    c.metadata.decayPeriod = 32;
    return c;
}

class ModelFuzzTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int>>
{
};

TEST_P(ModelFuzzTest, SchemeAgreesWithReferenceMemory)
{
    auto [kind, seed] = GetParam();
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(kind, c, dev, store);

    Pcg32 rng(9000 + seed);
    std::unordered_map<Addr, CacheLine> model;
    Tick now = 0;

    for (int op = 0; op < 4000; ++op) {
        now += 120;
        Addr addr = static_cast<Addr>(rng.below(96)) * kLineSize;

        bool do_write = model.empty() || rng.chance(0.6);
        if (do_write) {
            CacheLine data;
            switch (rng.below(5)) {
              case 0:
                // zero line (the hottest duplicate in real traces)
                break;
              case 1:
                // tiny duplicate pool: heavy cross-address dedup
                data.setWord(0, rng.below(3));
                break;
              case 2:
                // toggle pattern: same address alternating contents
                data.setWord(0, op & 1);
                data.setWord(3, 0x7777);
                break;
              case 3:
                // sparse content: one nonzero byte
                data[rng.below(kLineSize)] =
                    static_cast<std::uint8_t>(1 + rng.below(255));
                break;
              default:
                rng.fillLine(data);
                break;
            }
            scheme->write(addr, data, now);
            model[addr] = data;
        } else {
            CacheLine got;
            scheme->read(addr, got, now);
            auto it = model.find(addr);
            CacheLine want =
                it == model.end() ? CacheLine{} : it->second;
            ASSERT_EQ(got, want)
                << scheme->name() << " divergence at op " << op
                << " addr " << addr;
        }
    }

    // Final sweep: every modelled address must read back exactly.
    for (const auto &[addr, want] : model) {
        CacheLine got;
        now += 120;
        scheme->read(addr, got, now);
        ASSERT_EQ(got, want) << scheme->name() << " addr " << addr;
    }

    // Dedup bookkeeping conservation.
    const SchemeStats &s = scheme->stats();
    EXPECT_EQ(s.nvmDataWrites.value() + s.dedupHits.value(),
              s.logicalWrites.value());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesBySeeds, ModelFuzzTest,
    ::testing::Combine(::testing::Values(SchemeKind::Baseline,
                                         SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd,
                                         SchemeKind::EsdFull,
                                         SchemeKind::EsdPlus),
                       ::testing::Range(0, 4)),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_s" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace esd
