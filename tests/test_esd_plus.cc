/**
 * @file
 * Tests for the ESD+ extension (hot-content compare cache).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/simulator.hh"
#include "dedup/esd_plus.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
cfg()
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    c.pcm.rowBufferLines = 0;
    return c;
}

struct Rig
{
    Rig() : device(config.pcm), store(config.pcm.capacityBytes),
            scheme(config, device, store)
    {
    }

    AccessResult
    write(Addr addr, const CacheLine &data)
    {
        AccessResult r = scheme.write(addr, data, now);
        now += 200;
        return r;
    }

    CacheLine
    read(Addr addr)
    {
        CacheLine out;
        scheme.read(addr, out, now);
        now += 200;
        return out;
    }

    SimConfig config = cfg();
    PcmDevice device;
    NvmStore store;
    EsdPlusScheme scheme;
    Tick now = 0;
};

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    return l;
}

TEST(EsdPlus, FactoryAndName)
{
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto s = makeScheme(SchemeKind::EsdPlus, c, dev, store);
    EXPECT_EQ(s->name(), "ESD+");
    EXPECT_EQ(parseSchemeKind("esd_plus"), SchemeKind::EsdPlus);
}

TEST(EsdPlus, HotLineComparesMoveOnChip)
{
    Rig rig;
    CacheLine data = lineWith(0xfeed);
    // First write unique; second dedup fetches + promotes (referH 2);
    // subsequent dedups hit the content cache.
    for (int i = 0; i < 12; ++i)
        rig.write(static_cast<Addr>(i) * kLineSize, data);
    EXPECT_GT(rig.scheme.contentCacheHits(), 8u);
    // Compare reads stop growing once cached: far fewer than dedups.
    EXPECT_LT(rig.scheme.stats().compareReads.value(), 4u);
    EXPECT_EQ(rig.scheme.stats().dedupHits.value(), 11u);
}

TEST(EsdPlus, ReadYourWritesWithDuplicatePressure)
{
    Rig rig;
    Pcg32 rng(3);
    std::unordered_map<Addr, CacheLine> expect;
    for (int i = 0; i < 600; ++i) {
        Addr addr = static_cast<Addr>(rng.below(64)) * kLineSize;
        CacheLine data;
        if (rng.chance(0.7))
            data = lineWith(rng.below(4));  // very hot duplicates
        else
            rng.fillLine(data);
        rig.write(addr, data);
        expect[addr] = data;
    }
    for (const auto &[addr, want] : expect)
        EXPECT_EQ(rig.read(addr), want);
}

TEST(EsdPlus, CachedContentInvalidatedWhenLineDies)
{
    Rig rig;
    CacheLine hot = lineWith(0x11);
    // Make it hot and cached.
    for (int i = 0; i < 6; ++i)
        rig.write(static_cast<Addr>(i) * kLineSize, hot);
    ASSERT_GT(rig.scheme.contentCacheSize(), 0u);
    // Kill every reference: overwrite all six addresses.
    for (int i = 0; i < 6; ++i)
        rig.write(static_cast<Addr>(i) * kLineSize, lineWith(0x22 + i));
    // Rewriting the old content must be treated as new, not matched
    // against stale cached bytes.
    AccessResult r = rig.write(100 * kLineSize, hot);
    EXPECT_FALSE(r.dedup);
    EXPECT_EQ(rig.read(100 * kLineSize), hot);
}

TEST(EsdPlus, CapacityBounded)
{
    Rig rig;
    Pcg32 rng(4);
    // Many distinct hot lines — more than the 64-line cache.
    for (std::uint64_t v = 0; v < 200; ++v) {
        CacheLine data = lineWith(v + 1000);
        for (int rep = 0; rep < 3; ++rep)
            rig.write((v * 3 + rep) * kLineSize, data);
    }
    EXPECT_LE(rig.scheme.contentCacheSize(),
              rig.scheme.contentCacheCapacity());
}

TEST(EsdPlus, SameReductionAsEsdOnSameTrace)
{
    SimConfig c = cfg();
    auto run = [&](SchemeKind kind) {
        SyntheticWorkload trace(findApp("deepsjeng"), 9);
        return runWorkload(c, kind, trace, 20000, 2000);
    };
    RunResult esd = run(SchemeKind::Esd);
    RunResult plus = run(SchemeKind::EsdPlus);
    // The content cache is a latency optimisation, not a dedup change.
    EXPECT_EQ(esd.dedupHits, plus.dedupHits);
    EXPECT_LE(plus.writeLatency.mean(), esd.writeLatency.mean() + 1.0);
    EXPECT_LE(plus.nvmReadsTotal, esd.nvmReadsTotal);
}

} // namespace
} // namespace esd
