/**
 * @file
 * Exhaustive and property tests for the GF(2^8) arithmetic backing the
 * BCH and Reed-Solomon engines: every table-driven operation is checked
 * against its naive polynomial-arithmetic oracle.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/gf256.hh"

namespace esd
{
namespace
{

/** All 65536 products must match the shift-and-add oracle. */
TEST(Gf256, MulMatchesNaiveExhaustively)
{
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 0; b < 256; ++b) {
            ASSERT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b)),
                      gf256::mulNaive(static_cast<std::uint8_t>(a),
                                      static_cast<std::uint8_t>(b)))
                << "a=" << a << " b=" << b;
        }
    }
}

/** div is the exact inverse of mul, for every pair. */
TEST(Gf256, DivInvertsMulExhaustively)
{
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 1; b < 256; ++b) {
            const std::uint8_t q = gf256::div(
                static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
            ASSERT_EQ(gf256::mul(q, static_cast<std::uint8_t>(b)), a)
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Gf256, InverseMatchesFermatOracle)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto av = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gf256::mul(av, gf256::inv(av)), 1u) << "a=" << a;
        // a^-1 = a^254 by Fermat; powNaive never touches the tables.
        EXPECT_EQ(gf256::inv(av), gf256::powNaive(av, 254)) << "a=" << a;
    }
}

TEST(Gf256, ExpMatchesPowNaive)
{
    for (unsigned e = 0; e < 2 * gf256::kGroupOrder; ++e)
        ASSERT_EQ(gf256::exp(e), gf256::powNaive(2, e)) << "e=" << e;
}

TEST(Gf256, LogExpRoundTrip)
{
    for (unsigned e = 0; e < gf256::kGroupOrder; ++e)
        ASSERT_EQ(gf256::log(gf256::exp(e)), e);
    for (unsigned a = 1; a < 256; ++a)
        ASSERT_EQ(gf256::exp(gf256::log(static_cast<std::uint8_t>(a))), a);
}

/** alpha = 2 must generate the full multiplicative group. */
TEST(Gf256, AlphaIsPrimitive)
{
    for (unsigned e = 1; e < gf256::kGroupOrder; ++e)
        ASSERT_NE(gf256::exp(e), 1u) << "alpha order divides " << e;
    EXPECT_EQ(gf256::exp(0), 1u);
    EXPECT_EQ(gf256::exp(gf256::kGroupOrder), 1u);
}

TEST(Gf256, MulExpMatchesMulOfExp)
{
    for (unsigned a = 0; a < 256; ++a) {
        for (unsigned e = 0; e < gf256::kGroupOrder; e += 7) {
            ASSERT_EQ(gf256::mulExp(static_cast<std::uint8_t>(a), e),
                      gf256::mul(static_cast<std::uint8_t>(a),
                                 gf256::exp(e)))
                << "a=" << a << " e=" << e;
        }
    }
}

/** Field axioms under fuzz: distributivity and associativity tie the
 * table path and the naive path together on random operands. */
TEST(Gf256, FieldAxiomsUnderFuzz)
{
    Pcg32 rng(2026);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.next64());
        const auto b = static_cast<std::uint8_t>(rng.next64());
        const auto c = static_cast<std::uint8_t>(rng.next64());
        ASSERT_EQ(gf256::mul(static_cast<std::uint8_t>(a ^ b), c),
                  gf256::mulNaive(a, c) ^ gf256::mulNaive(b, c));
        ASSERT_EQ(gf256::mul(gf256::mul(a, b), c),
                  gf256::mulNaive(a, gf256::mulNaive(b, c)));
    }
}

} // namespace
} // namespace esd
