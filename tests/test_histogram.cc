/**
 * @file
 * The exact log-histogram behind every latency percentile: index math
 * round-trips, percentiles against a sorted-vector nearest-rank
 * oracle under PCG fuzz, merge algebra (commutative, associative,
 * equivalent to combined recording), and the edge cases (empty,
 * single sample, overflow clamp). Plus the IntervalSampler edges the
 * telemetry layer leans on: re-configuration after registry growth,
 * zero-length runs, and the final partial interval.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stat_registry.hh"
#include "common/stats.hh"
#include "metrics/interval_sampler.hh"

namespace esd
{
namespace
{

/** Nearest-rank percentile over raw values, the definition the
 * histogram must reproduce. */
std::uint64_t
oraclePercentile(std::vector<std::uint64_t> v, double p)
{
    std::sort(v.begin(), v.end());
    std::size_t rank =
        p <= 0.0 ? 1
                 : static_cast<std::size_t>(
                       std::ceil(p / 100.0 *
                                 static_cast<double>(v.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), v.size());
    return v[rank - 1];
}

const double kProbes[] = {0, 1, 10, 25, 50, 90, 95, 99, 99.9, 100};

TEST(LogHistogram, IndexRoundTripsAndBoundsValue)
{
    const std::uint64_t probes[] = {
        0,      1,      2,       1023,    4094,
        4095,   4096,   4097,    8191,    8192,
        123456, 1u << 20, (1u << 20) + 7, 1ull << 40,
        (1ull << 40) + 12345, LogHistogram::kMaxTrackable - 1,
        LogHistogram::kMaxTrackable};
    for (std::uint64_t v : probes) {
        std::size_t i = LogHistogram::indexFor(v);
        std::uint64_t lo = LogHistogram::valueAt(i);
        std::uint64_t width = LogHistogram::widthAt(i);
        EXPECT_LE(lo, v) << "v=" << v;
        EXPECT_LT(v, lo + width) << "v=" << v;
        // The bucket's lower bound indexes back to the same bucket.
        EXPECT_EQ(LogHistogram::indexFor(lo), i) << "v=" << v;
    }
}

TEST(LogHistogram, UnitBucketsBelowSubBucketCount)
{
    for (std::uint64_t v : {0ull, 1ull, 42ull, 4094ull, 4095ull}) {
        std::size_t i = LogHistogram::indexFor(v);
        EXPECT_EQ(LogHistogram::valueAt(i), v);
        EXPECT_EQ(LogHistogram::widthAt(i), 1u);
    }
    // First non-unit bucket starts exactly where the units end.
    EXPECT_EQ(LogHistogram::valueAt(LogHistogram::indexFor(4096)), 4096u);
    EXPECT_EQ(LogHistogram::widthAt(LogHistogram::indexFor(4096)), 2u);
}

TEST(LogHistogram, PercentilesExactForSmallValuesUnderFuzz)
{
    Pcg32 rng(0xfeedULL);
    LogHistogram h;
    std::vector<std::uint64_t> raw;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.next() % 4096;
        h.record(v);
        raw.push_back(v);
    }
    ASSERT_EQ(h.totalCount(), raw.size());
    // Below 4096 buckets are unit-width: exact equality with the
    // sorted-vector nearest-rank oracle.
    for (double p : kProbes)
        EXPECT_EQ(h.percentile(p), oraclePercentile(raw, p))
            << "p=" << p;
}

TEST(LogHistogram, PercentilesLandInOracleBucketForLargeValues)
{
    Pcg32 rng(0xbeefULL);
    LogHistogram h;
    std::vector<std::uint64_t> raw;
    for (int i = 0; i < 4000; ++i) {
        // Spread across many octaves, up to ~2^44.
        std::uint64_t v = rng.next64() >> (rng.next() % 45 + 20);
        h.record(v);
        raw.push_back(v);
    }
    for (double p : kProbes) {
        auto hp = static_cast<std::uint64_t>(h.percentile(p));
        std::uint64_t op = oraclePercentile(raw, p);
        // Lossy octave buckets: the histogram returns the bucket
        // lower bound of the true rank value.
        EXPECT_EQ(LogHistogram::indexFor(hp),
                  LogHistogram::indexFor(op))
            << "p=" << p;
        EXPECT_LE(hp, op);
    }
}

TEST(LogHistogram, MergeIsCommutativeAndAssociative)
{
    Pcg32 rng(7);
    LogHistogram a, b, c;
    for (int i = 0; i < 1000; ++i) {
        a.record(rng.next() % 10000);
        b.record(rng.next64() % (1ull << 30));
        c.record(rng.next() % 3);
    }

    auto flat = [](const LogHistogram &h) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        h.forEachBucket([&](std::uint64_t lo, std::uint64_t,
                            std::uint64_t count) {
            out.emplace_back(lo, count);
        });
        return out;
    };

    LogHistogram ab = a;
    ab.merge(b);
    LogHistogram ba = b;
    ba.merge(a);
    EXPECT_EQ(flat(ab), flat(ba));
    EXPECT_EQ(ab.totalCount(), ba.totalCount());

    LogHistogram ab_c = ab;  // (a+b)+c
    ab_c.merge(c);
    LogHistogram bc = b;     // a+(b+c)
    bc.merge(c);
    LogHistogram a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(flat(ab_c), flat(a_bc));
    for (double p : kProbes)
        EXPECT_EQ(ab_c.percentile(p), a_bc.percentile(p)) << "p=" << p;
}

TEST(LogHistogram, MergeEqualsCombinedRecording)
{
    Pcg32 rng(99);
    LogHistogram left, right, combined;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.next64() % (1ull << 20);
        if (i % 2) {
            left.record(v);
        } else {
            right.record(v);
        }
        combined.record(v);
    }
    left.merge(right);
    EXPECT_EQ(left.totalCount(), combined.totalCount());
    for (double p : kProbes)
        EXPECT_EQ(left.percentile(p), combined.percentile(p));
}

TEST(LogHistogram, EmptyHistogramIsZero)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(100), 0u);
    bool visited = false;
    h.forEachBucket([&](std::uint64_t, std::uint64_t, std::uint64_t) {
        visited = true;
    });
    EXPECT_FALSE(visited);

    // Merging an empty histogram changes nothing.
    LogHistogram other;
    other.record(7);
    other.merge(h);
    EXPECT_EQ(other.totalCount(), 1u);
    EXPECT_EQ(other.percentile(100), 7u);
}

TEST(LogHistogram, SingleSampleOwnsEveryPercentile)
{
    LogHistogram h;
    h.record(321);
    for (double p : kProbes)
        EXPECT_EQ(h.percentile(p), 321u);
}

TEST(LogHistogram, OverflowClampsToMaxTrackable)
{
    LogHistogram h;
    h.record(~0ull);  // far past the trackable ceiling
    h.record(LogHistogram::kMaxTrackable);
    EXPECT_EQ(h.totalCount(), 2u);
    auto top = static_cast<std::uint64_t>(h.percentile(100));
    EXPECT_EQ(LogHistogram::indexFor(top),
              LogHistogram::indexFor(LogHistogram::kMaxTrackable));
}

TEST(LogHistogram, RecordWithCountMatchesRepeatedRecord)
{
    LogHistogram a, b;
    a.record(50, 1000);
    for (int i = 0; i < 1000; ++i)
        b.record(50);
    EXPECT_EQ(a.totalCount(), b.totalCount());
    EXPECT_EQ(a.percentile(50), b.percentile(50));
}

TEST(LatencyStat, MergeCombinesSummaryAndHistogram)
{
    LatencyStat a, b;
    for (int i = 1; i <= 100; ++i)
        a.sample(i);
    for (int i = 101; i <= 200; ++i)
        b.sample(i);

    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 200.0);
    EXPECT_DOUBLE_EQ(a.mean(), 100.5);
    EXPECT_DOUBLE_EQ(a.percentile(50), 100.0);
    EXPECT_DOUBLE_EQ(a.percentile(100), 200.0);

    // Merging an empty stat is a no-op.
    LatencyStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 200u);
}

TEST(LatencyStat, MergeOrderIndependent)
{
    Pcg32 rng(5);
    LatencyStat parts[3];
    LatencyStat forward, backward;
    for (int j = 0; j < 3; ++j)
        for (int i = 0; i < 500; ++i)
            parts[j].sample(rng.next() % 100000);
    for (int j = 0; j < 3; ++j)
        forward.merge(parts[j]);
    for (int j = 2; j >= 0; --j)
        backward.merge(parts[j]);
    EXPECT_EQ(forward.count(), backward.count());
    EXPECT_DOUBLE_EQ(forward.sum(), backward.sum());
    for (double p : kProbes)
        EXPECT_DOUBLE_EQ(forward.percentile(p), backward.percentile(p));
}

TEST(IntervalSampler, ReconfigureAfterRegistryGrowth)
{
    StatRegistry reg;
    Counter a;
    reg.addCounter("a", a);

    IntervalSampler s;
    s.configure(reg, 2);
    ASSERT_EQ(s.columns().size(), 1u);

    // The registry widened; re-configure re-captures the column set
    // (the guard that keeps row width and columns in sync).
    Counter b;
    reg.addCounter("b", b);
    s.configure(reg, 2);
    ASSERT_EQ(s.columns().size(), 2u);

    a.inc();
    b.inc();
    s.onWrite(1);
    s.onWrite(2);
    ASSERT_EQ(s.rows().size(), 1u);
    EXPECT_EQ(s.rows()[0].size(), s.columns().size());
}

TEST(IntervalSampler, ZeroLengthRunHasNoRows)
{
    StatRegistry reg;
    Counter a;
    reg.addCounter("a", a);

    IntervalSampler s;
    s.configure(reg, 5);
    EXPECT_TRUE(s.enabled());
    EXPECT_TRUE(s.rows().empty());
    EXPECT_TRUE(s.sampleWrites().empty());
}

TEST(IntervalSampler, FinalPartialIntervalIsNotSampled)
{
    StatRegistry reg;
    Counter a;
    reg.addCounter("a", a);

    IntervalSampler s;
    s.configure(reg, 5);
    for (std::uint64_t w = 1; w <= 12; ++w) {
        a.inc();
        s.onWrite(w);
    }
    // Samples land on exact multiples; the trailing partial interval
    // (writes 11-12) is intentionally not flushed.
    ASSERT_EQ(s.sampleWrites().size(), 2u);
    EXPECT_EQ(s.sampleWrites()[0], 5u);
    EXPECT_EQ(s.sampleWrites()[1], 10u);
    EXPECT_DOUBLE_EQ(s.rows()[0][0], 5.0);
    EXPECT_DOUBLE_EQ(s.rows()[1][0], 10.0);
}

} // namespace
} // namespace esd
