/**
 * @file
 * Conformance wall for the pluggable ECC engines: every engine's
 * production kernel is swept against its naive oracle over all 2^16
 * u16-splat patterns plus PCG fuzz, and error injection proves the
 * claimed correction capability t per codeword — corrects up to t,
 * detects (or refuses) beyond it.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "ecc/bch.hh"
#include "ecc/ecc_engine.hh"
#include "ecc/gf256.hh"
#include "ecc/rs.hh"

namespace esd
{
namespace
{

const EccEngineKind kAllKinds[] = {
    EccEngineKind::Hamming, EccEngineKind::Bch, EccEngineKind::Rs};

CacheLine
randomLine(Pcg32 &rng)
{
    CacheLine l;
    rng.fillLine(l);
    return l;
}

/** The pattern line used by the exhaustive sweeps: one u16 value
 * splatted across all 32 lanes, hitting every byte pair. */
CacheLine
splatLine(unsigned pattern)
{
    const std::uint64_t lane = pattern & 0xffffu;
    const std::uint64_t word = lane | lane << 16 | lane << 32 | lane << 48;
    CacheLine l;
    for (std::size_t w = 0; w < kWordsPerLine; ++w)
        l.setWord(w, word);
    return l;
}

TEST(EccEngineRegistry, KindsNamesAndCapabilities)
{
    for (EccEngineKind k : kAllKinds) {
        const EccEngine &e = eccEngine(k);
        EXPECT_EQ(e.kind(), k);
        const EccCapability cap = e.capability();
        // Every engine protects the full 512-bit line...
        EXPECT_EQ(cap.units * cap.dataBitsPerUnit, 512u);
        EXPECT_GE(cap.tPerUnit, 1u);
        // ...and packs its check word into the same 64-bit LineEcc, so
        // EFIT entries and stored-line layout are engine-independent.
        EXPECT_EQ(e.fingerprintBits(), 64u);
    }
    EXPECT_STREQ(eccEngine(EccEngineKind::Hamming).name(), "hamming");
    EXPECT_STREQ(eccEngine(EccEngineKind::Bch).name(), "bch");
    EXPECT_STREQ(eccEngine(EccEngineKind::Rs).name(), "rs");
}

TEST(EccEngineRegistry, HammingEngineIsTheLegacyCodec)
{
    Pcg32 rng(7);
    const EccEngine &e = eccEngine(EccEngineKind::Hamming);
    for (int i = 0; i < 200; ++i) {
        CacheLine l = randomLine(rng);
        EXPECT_EQ(e.encodeLine(l), LineEccCodec::encode(l));
        EXPECT_EQ(e.fingerprint(l), LineEccCodec::encode(l));
    }
}

/** The BCH generator must be the degree-16 product m1·m3: binary, and
 * annihilating both alpha and alpha^3 (the designed roots). */
TEST(BchEngine, GeneratorHasDesignedRoots)
{
    const std::uint32_t g = BchLineEngine::generatorPoly();
    EXPECT_EQ(g >> 16, 1u);
    std::uint8_t atAlpha = 0;
    std::uint8_t atAlpha3 = 0;
    for (unsigned i = 0; i <= 16; ++i) {
        if (g & (1u << i)) {
            atAlpha ^= gf256::exp(i);
            atAlpha3 ^= gf256::exp(3 * i);
        }
    }
    EXPECT_EQ(atAlpha, 0u);
    EXPECT_EQ(atAlpha3, 0u);
}

/** Table-driven group encoder vs the bitwise long-division oracle on
 * random word pairs. */
TEST(BchEngine, GroupEncodeMatchesNaive)
{
    Pcg32 rng(11);
    EXPECT_EQ(BchLineEngine::encodeGroup(0, 0), 0u);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t lo = rng.next64();
        const std::uint64_t hi = rng.next64();
        ASSERT_EQ(BchLineEngine::encodeGroup(lo, hi),
                  BchLineEngine::encodeGroupNaive(lo, hi));
    }
}

/** RS LFSR encoder vs the schoolbook polynomial division oracle. */
TEST(RsEngine, ParityEncodeMatchesNaive)
{
    Pcg32 rng(13);
    std::uint8_t data[64];
    std::uint8_t fast[8];
    std::uint8_t slow[8];
    std::memset(data, 0, sizeof(data));
    RsLineEngine::encodeParity(data, fast);
    RsLineEngine::encodeParityNaive(data, slow);
    EXPECT_EQ(std::memcmp(fast, slow, 8), 0);
    for (int i = 0; i < 2000; ++i) {
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(rng.next64());
        RsLineEngine::encodeParity(data, fast);
        RsLineEngine::encodeParityNaive(data, slow);
        ASSERT_EQ(std::memcmp(fast, slow, 8), 0) << "iteration " << i;
    }
}

/** Every engine: production encode == naive oracle over all 2^16
 * u16-splat patterns. */
TEST(EccEngineConformance, ExhaustiveSplatSweepMatchesOracle)
{
    for (EccEngineKind k : kAllKinds) {
        const EccEngine &e = eccEngine(k);
        for (unsigned p = 0; p < 0x10000; ++p) {
            const CacheLine l = splatLine(p);
            ASSERT_EQ(e.encodeLine(l), e.encodeLineOracle(l))
                << e.name() << " pattern " << p;
        }
    }
}

/** Every engine: production encode == naive oracle on random lines. */
TEST(EccEngineConformance, FuzzedEncodeMatchesOracle)
{
    Pcg32 rng(17);
    for (int i = 0; i < 2000; ++i) {
        const CacheLine l = randomLine(rng);
        for (EccEngineKind k : kAllKinds) {
            const EccEngine &e = eccEngine(k);
            ASSERT_EQ(e.encodeLine(l), e.encodeLineOracle(l))
                << e.name() << " iteration " << i;
        }
    }
}

/** Clean decode round-trip: decode(line, encode(line)) is Ok and
 * changes nothing, for every engine. */
TEST(EccEngineConformance, CleanRoundTrip)
{
    Pcg32 rng(19);
    for (int i = 0; i < 500; ++i) {
        const CacheLine l = randomLine(rng);
        for (EccEngineKind k : kAllKinds) {
            const EccEngine &e = eccEngine(k);
            const LineEcc ecc = e.encodeLine(l);
            const LineDecodeResult r = e.decodeLine(l, ecc);
            ASSERT_EQ(r.status, EccStatus::Ok) << e.name();
            ASSERT_TRUE(r.line == l) << e.name();
            ASSERT_EQ(r.ecc, ecc) << e.name();
            ASSERT_EQ(r.correctedWords, 0u) << e.name();
        }
    }
}

/** Hamming t=1 per word: one flipped bit in every word at once — eight
 * simultaneous errors — all corrected. */
TEST(EccCorrection, HammingCorrectsOneBitPerWord)
{
    Pcg32 rng(23);
    const EccEngine &e = eccEngine(EccEngineKind::Hamming);
    for (int i = 0; i < 200; ++i) {
        const CacheLine orig = randomLine(rng);
        const LineEcc ecc = e.encodeLine(orig);
        CacheLine bad = orig;
        for (std::size_t w = 0; w < kWordsPerLine; ++w)
            bad.setWord(w, bad.word(w) ^ (1ull << (rng.next64() % 64)));
        const LineDecodeResult r = e.decodeLine(bad, ecc);
        ASSERT_EQ(r.status, EccStatus::CorrectedData);
        ASSERT_TRUE(r.line == orig);
        ASSERT_EQ(r.ecc, ecc);
        ASSERT_EQ(r.correctedWords, kWordsPerLine);
    }
}

/** BCH t=2 per group: up to two flipped bits in each of the four
 * codewords at once (data and/or check bits) — all corrected. */
TEST(EccCorrection, BchCorrectsTwoBitsPerGroup)
{
    Pcg32 rng(29);
    const EccEngine &e = eccEngine(EccEngineKind::Bch);
    for (int i = 0; i < 300; ++i) {
        const CacheLine orig = randomLine(rng);
        const LineEcc ecc = e.encodeLine(orig);
        CacheLine bad = orig;
        LineEcc badEcc = ecc;
        bool touchedData = false;
        for (unsigned g = 0; g < BchLineEngine::kGroups; ++g) {
            const unsigned nerr = rng.next64() % 3;  // 0, 1, or 2
            unsigned prev = 144;
            for (unsigned j = 0; j < nerr; ++j) {
                unsigned pos;
                do {
                    pos = rng.next64() % BchLineEngine::kCodeBits;
                } while (pos == prev);
                prev = pos;
                if (pos < BchLineEngine::kCheckBits) {
                    badEcc ^= 1ull << (16 * g + pos);
                } else {
                    const unsigned bit = pos - BchLineEngine::kCheckBits;
                    const std::size_t w = 2 * g + bit / 64;
                    bad.setWord(w, bad.word(w) ^ (1ull << (bit % 64)));
                    touchedData = true;
                }
            }
        }
        const LineDecodeResult r = e.decodeLine(bad, badEcc);
        if (bad == orig && badEcc == ecc) {
            ASSERT_EQ(r.status, EccStatus::Ok);
        } else {
            ASSERT_NE(r.status, EccStatus::Uncorrectable) << "iter " << i;
            ASSERT_TRUE(r.line == orig) << "iter " << i;
            ASSERT_EQ(r.ecc, ecc) << "iter " << i;
            if (touchedData) {
                ASSERT_EQ(r.status, EccStatus::CorrectedData);
            }
        }
    }
}

/** RS t=4 symbols: up to four corrupted bytes anywhere in the codeword
 * (data or parity) — all corrected. */
TEST(EccCorrection, RsCorrectsFourSymbolErrors)
{
    Pcg32 rng(31);
    const EccEngine &e = eccEngine(EccEngineKind::Rs);
    for (int i = 0; i < 300; ++i) {
        const CacheLine orig = randomLine(rng);
        const LineEcc ecc = e.encodeLine(orig);
        CacheLine bad = orig;
        LineEcc badEcc = ecc;
        const unsigned nerr = 1 + rng.next64() % 4;
        bool used[72] = {};
        bool touchedData = false;
        for (unsigned j = 0; j < nerr; ++j) {
            unsigned sym;
            do {
                sym = rng.next64() % RsLineEngine::kCodeSymbols;
            } while (used[sym]);
            used[sym] = true;
            const auto delta = static_cast<std::uint8_t>(
                1 + rng.next64() % 255);
            if (sym < RsLineEngine::kParitySymbols) {
                badEcc ^= static_cast<std::uint64_t>(delta) << (8 * sym);
            } else {
                const unsigned k = 71 - sym;  // line byte index
                const std::size_t w = k / 8;
                bad.setWord(w, bad.word(w) ^
                    (static_cast<std::uint64_t>(delta) << (8 * (k % 8))));
                touchedData = true;
            }
        }
        const LineDecodeResult r = e.decodeLine(bad, badEcc);
        ASSERT_NE(r.status, EccStatus::Uncorrectable) << "iter " << i;
        ASSERT_TRUE(r.line == orig) << "iter " << i;
        ASSERT_EQ(r.ecc, ecc) << "iter " << i;
        ASSERT_EQ(r.status, touchedData ? EccStatus::CorrectedData
                                        : EccStatus::CorrectedCheck);
    }
}

/** Hamming beyond t: two flipped bits in one word are always detected
 * as Uncorrectable (the SEC-DED guarantee), never mis-corrected. */
TEST(EccDetection, HammingDetectsDoubleBitErrors)
{
    Pcg32 rng(37);
    const EccEngine &e = eccEngine(EccEngineKind::Hamming);
    for (int i = 0; i < 300; ++i) {
        const CacheLine orig = randomLine(rng);
        const LineEcc ecc = e.encodeLine(orig);
        CacheLine bad = orig;
        const std::size_t w = rng.next64() % kWordsPerLine;
        const unsigned b1 = rng.next64() % 64;
        unsigned b2;
        do {
            b2 = rng.next64() % 64;
        } while (b2 == b1);
        bad.setWord(w, bad.word(w) ^ (1ull << b1) ^ (1ull << b2));
        const LineDecodeResult r = e.decodeLine(bad, ecc);
        ASSERT_EQ(r.status, EccStatus::Uncorrectable) << "iter " << i;
    }
}

/** BCH beyond t: three flipped bits in one codeword must never be
 * silently "corrected" back to a state that hides the corruption —
 * they are either refused outright or land on a different codeword
 * (which the RAS layer's verify-after-scrub then catches). */
TEST(EccDetection, BchRefusesTripleBitErrors)
{
    Pcg32 rng(41);
    const EccEngine &e = eccEngine(EccEngineKind::Bch);
    unsigned refused = 0;
    const int kTrials = 300;
    for (int i = 0; i < kTrials; ++i) {
        const CacheLine orig = randomLine(rng);
        const LineEcc ecc = e.encodeLine(orig);
        CacheLine bad = orig;
        LineEcc badEcc = ecc;
        const unsigned g = rng.next64() % BchLineEngine::kGroups;
        bool used[144] = {};
        for (unsigned j = 0; j < 3; ++j) {
            unsigned pos;
            do {
                pos = rng.next64() % BchLineEngine::kCodeBits;
            } while (used[pos]);
            used[pos] = true;
            if (pos < BchLineEngine::kCheckBits) {
                badEcc ^= 1ull << (16 * g + pos);
            } else {
                const unsigned bit = pos - BchLineEngine::kCheckBits;
                const std::size_t w = 2 * g + bit / 64;
                bad.setWord(w, bad.word(w) ^ (1ull << (bit % 64)));
            }
        }
        const LineDecodeResult r = e.decodeLine(bad, badEcc);
        // Distance 3 from the true codeword, so a "successful" decode
        // can never return the original data.
        ASSERT_FALSE(r.status != EccStatus::Uncorrectable &&
                     r.line == orig && r.ecc == ecc)
            << "iter " << i;
        if (r.status == EccStatus::Uncorrectable)
            ++refused;
    }
    // Weight-<=2 patterns fill ~16% of the 2^16 syndrome space, so
    // ~84% of weight-3 errors fall outside every decoding sphere and
    // are refused outright; the rest land on a wrong codeword, which
    // the assertion above pins as never silently-correct.
    EXPECT_GE(refused, kTrials * 3 / 4);
}

/** RS beyond t: five corrupted symbols — refused or visibly wrong,
 * never silently restored. */
TEST(EccDetection, RsRefusesFiveSymbolErrors)
{
    Pcg32 rng(43);
    const EccEngine &e = eccEngine(EccEngineKind::Rs);
    unsigned refused = 0;
    const int kTrials = 300;
    for (int i = 0; i < kTrials; ++i) {
        const CacheLine orig = randomLine(rng);
        const LineEcc ecc = e.encodeLine(orig);
        CacheLine bad = orig;
        LineEcc badEcc = ecc;
        bool used[72] = {};
        for (unsigned j = 0; j < 5; ++j) {
            unsigned sym;
            do {
                sym = rng.next64() % RsLineEngine::kCodeSymbols;
            } while (used[sym]);
            used[sym] = true;
            const auto delta = static_cast<std::uint8_t>(
                1 + rng.next64() % 255);
            if (sym < RsLineEngine::kParitySymbols) {
                badEcc ^= static_cast<std::uint64_t>(delta) << (8 * sym);
            } else {
                const unsigned k = 71 - sym;
                const std::size_t w = k / 8;
                bad.setWord(w, bad.word(w) ^
                    (static_cast<std::uint64_t>(delta) << (8 * (k % 8))));
            }
        }
        const LineDecodeResult r = e.decodeLine(bad, badEcc);
        ASSERT_FALSE(r.status != EccStatus::Uncorrectable &&
                     r.line == orig && r.ecc == ecc)
            << "iter " << i;
        if (r.status == EccStatus::Uncorrectable)
            ++refused;
    }
    EXPECT_GE(refused, kTrials * 9 / 10);
}

/** The RS fingerprint's adversarial edge over SEC-DED: minimum
 * distance 9 guarantees two lines differing in at most 8 bytes can
 * NEVER collide — the localized-delta corpus of Fig. 8 has a zero
 * false-positive rate by construction. */
TEST(EccFingerprint, RsNeverCollidesOnLocalizedDeltas)
{
    Pcg32 rng(47);
    const EccEngine &e = eccEngine(EccEngineKind::Rs);
    for (int i = 0; i < 2000; ++i) {
        const CacheLine a = randomLine(rng);
        CacheLine b = a;
        const unsigned nbytes = 1 + rng.next64() % 8;
        bool used[64] = {};
        for (unsigned j = 0; j < nbytes; ++j) {
            unsigned k;
            do {
                k = rng.next64() % 64;
            } while (used[k]);
            used[k] = true;
            const auto delta = static_cast<std::uint8_t>(
                1 + rng.next64() % 255);
            b.setWord(k / 8, b.word(k / 8) ^
                (static_cast<std::uint64_t>(delta) << (8 * (k % 8))));
        }
        ASSERT_NE(e.fingerprint(a), e.fingerprint(b)) << "iter " << i;
    }
}

/** Equal lines always fingerprint equal, whatever the engine — the
 * property the dedup schemes' compare step is built on. */
TEST(EccFingerprint, EqualLinesFingerprintEqual)
{
    Pcg32 rng(53);
    for (int i = 0; i < 200; ++i) {
        const CacheLine a = randomLine(rng);
        const CacheLine b = a;
        for (EccEngineKind k : kAllKinds) {
            const EccEngine &e = eccEngine(k);
            ASSERT_EQ(e.fingerprint(a), e.fingerprint(b));
        }
    }
}

} // namespace
} // namespace esd
