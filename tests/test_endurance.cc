/**
 * @file
 * Tests for the endurance substrate: wear tracking and Start-Gap
 * wear leveling.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.hh"
#include "nvm/pcm_device.hh"
#include "nvm/start_gap.hh"
#include "nvm/wear_tracker.hh"

namespace esd
{
namespace
{

// ---------------------------------------------------------- tracker

TEST(WearTracker, CountsPerLine)
{
    WearTracker w;
    w.recordWrite(0);
    w.recordWrite(13);   // same line as 0
    w.recordWrite(64);
    WearStats s = w.stats();
    EXPECT_EQ(s.totalWrites, 3u);
    EXPECT_EQ(s.linesTouched, 2u);
    EXPECT_EQ(s.maxLineWrites, 2u);
    EXPECT_EQ(s.hottestLine, 0u);
    EXPECT_DOUBLE_EQ(w.lineWrites(0), 2);
}

TEST(WearTracker, ImbalanceMetric)
{
    WearTracker w;
    for (int i = 0; i < 9; ++i)
        w.recordWrite(0);
    w.recordWrite(64);
    // 10 writes over 2 lines: mean 5, max 9.
    EXPECT_DOUBLE_EQ(w.stats().imbalance(), 9.0 / 5.0);
}

TEST(WearTracker, LifetimeProjection)
{
    WearTracker w;
    for (int i = 0; i < 100; ++i)
        w.recordWrite(0);
    EXPECT_DOUBLE_EQ(w.lifetimeUntilWearOut(1e6), 1e4);
}

TEST(WearTracker, ResetClears)
{
    WearTracker w;
    w.recordWrite(0);
    w.reset();
    EXPECT_EQ(w.stats().totalWrites, 0u);
}

// --------------------------------------------------------- start-gap

TEST(StartGap, InitialMappingIsIdentity)
{
    StartGap sg(8, 4);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(sg.slotOf(i), i);  // gap starts above all lines
}

TEST(StartGap, MappingStaysInjective)
{
    StartGap sg(16, 2);
    Pcg32 rng(1);
    for (int round = 0; round < 500; ++round) {
        sg.recordWrite();
        std::unordered_set<std::uint64_t> slots;
        for (std::uint64_t i = 0; i < 16; ++i) {
            std::uint64_t s = sg.slotOf(i);
            EXPECT_LE(s, 16u);
            EXPECT_TRUE(slots.insert(s).second)
                << "duplicate slot after round " << round;
        }
    }
}

TEST(StartGap, GapMovesEveryPeriodWrites)
{
    StartGap sg(8, 3);
    EXPECT_FALSE(sg.recordWrite());
    EXPECT_FALSE(sg.recordWrite());
    EXPECT_TRUE(sg.recordWrite());
    EXPECT_EQ(sg.moves(), 1u);
    EXPECT_EQ(sg.gap(), 7u);
}

TEST(StartGap, FullRotationShiftsStart)
{
    StartGap sg(4, 1);  // every write moves the gap
    // Gap walks 4 -> 3 -> 2 -> 1 -> 0, then wraps with start++.
    for (int i = 0; i < 5; ++i)
        sg.recordWrite();
    EXPECT_EQ(sg.start(), 1u);
    EXPECT_EQ(sg.gap(), 4u);
}

TEST(StartGap, HotLineSweepsAcrossSlots)
{
    StartGap sg(8, 1);
    std::unordered_set<std::uint64_t> visited;
    for (int i = 0; i < 9 * 8; ++i) {
        visited.insert(sg.slotOf(3));
        sg.recordWrite();
    }
    // A single hot line must visit many distinct physical slots.
    EXPECT_GE(visited.size(), 8u);
}

// ----------------------------------------------------- device glue

TEST(PcmDeviceWear, TracksWritesNotReads)
{
    PcmConfig cfg;
    PcmDevice dev(cfg);
    dev.access(OpType::Write, 0, 0);
    dev.access(OpType::Write, 0, 1000);
    dev.access(OpType::Read, 0, 2000);
    WearStats s = dev.wear().stats();
    EXPECT_EQ(s.totalWrites, 2u);
    EXPECT_EQ(s.maxLineWrites, 2u);
}

TEST(PcmDeviceWear, StartGapSpreadsHotLine)
{
    PcmConfig cfg;
    cfg.gapMovePeriod = 4;
    cfg.startGapRegionLines = 64;

    PcmConfig no_sg = cfg;
    no_sg.startGapEnabled = false;
    PcmConfig with_sg = cfg;
    with_sg.startGapEnabled = true;

    PcmDevice plain(no_sg);
    PcmDevice leveled(with_sg);
    Tick t = 0;
    for (int i = 0; i < 4000; ++i) {
        plain.access(OpType::Write, 0, t);
        leveled.access(OpType::Write, 0, t);
        t += 200;
    }
    WearStats p = plain.wear().stats();
    WearStats l = leveled.wear().stats();
    EXPECT_EQ(p.maxLineWrites, 4000u);
    // Start-Gap rotation bounds the hottest slot's wear well below.
    EXPECT_LT(l.maxLineWrites, p.maxLineWrites / 4);
    EXPECT_GT(leveled.stats().gapMoves.value(), 0u);
}

TEST(PcmDeviceWear, GapMovesChargeEnergyAndBandwidth)
{
    PcmConfig cfg;
    cfg.startGapEnabled = true;
    cfg.gapMovePeriod = 2;
    PcmDevice dev(cfg);
    for (int i = 0; i < 10; ++i)
        dev.access(OpType::Write, 0, static_cast<Tick>(i) * 1000);
    EXPECT_EQ(dev.stats().gapMoves.value(), 5u);
    // Internal copies add read+write energy beyond demand writes.
    EXPECT_DOUBLE_EQ(dev.stats().readEnergy, 5 * cfg.readEnergy);
    EXPECT_DOUBLE_EQ(dev.stats().writeEnergy, (10 + 5) * cfg.writeEnergy);
}

TEST(PcmDeviceWear, ResetWearKeepsTiming)
{
    PcmConfig cfg;
    PcmDevice dev(cfg);
    dev.access(OpType::Write, 0, 0);
    dev.resetWear();
    EXPECT_EQ(dev.wear().stats().totalWrites, 0u);
    EXPECT_EQ(dev.stats().writes.value(), 1u);  // stats untouched
}

} // namespace
} // namespace esd
