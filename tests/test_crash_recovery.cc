/**
 * @file
 * Kill-and-recover differential harness for the crash-consistency
 * subsystem.
 *
 * Every scheme replays the mixed-duplication trace of the PR 3
 * differential harness with the PersistenceManager attached, a
 * deterministic crash injected at a sampled write index, and recovery
 * run offline on the captured image. The recovered state must be
 * equivalent to a golden shadow model within the window the configured
 * persistence domain is allowed to lose:
 *
 *   - with E = epoch_writes and a crash at write W, the recovered
 *     state reflects at least everything up to the journal floor F
 *     (ADR: the last epoch commit, floor((W-1)/E)*E; eADR: W-1, since
 *     the metadata write-back buffer survives) and at most the crash
 *     write U (pre-barrier crashes: W-1);
 *   - every recovered AMT mapping must decrypt — via the recovered
 *     counter — to a value the shadow model held current at some write
 *     index in [F, U]; every address first written at or before F must
 *     be recovered at all;
 *   - refcounts re-derived by recovery must sum to the recovered
 *     mapping count (conservation);
 *   - the pad-safety audit against the image's ground-truth counter
 *     oracle must report zero violations: no recovered counter floor
 *     may ever let a future write reuse a pad.
 *
 * The trace keeps running after the crash snapshot (the image is a
 * capture, not a stop), so scheme-level stats conservation is also
 * checked over the full run.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "core/simulator.hh"
#include "dedup/mapped_scheme.hh"
#include "persist/recovery.hh"

namespace esd
{
namespace
{

struct Op
{
    bool write = false;
    Addr addr = 0;
    CacheLine data;
};

/** One address pool line, 128 lines wide. */
Addr
lineAddr(std::uint64_t i)
{
    return (i % 128) * kLineSize;
}

/** The deterministic mixed-duplication trace of the differential
 * harness: zero floods, a shared duplicate pool, unique fills, rewrite
 * toggles, and frees — every journal record type fires. */
std::vector<Op>
buildTrace()
{
    std::vector<Op> ops;
    auto write = [&](Addr a, const CacheLine &d) {
        ops.push_back(Op{true, a, d});
    };

    for (std::uint64_t i = 0; i < 64; ++i)
        write(lineAddr(i), CacheLine{});

    for (std::uint64_t i = 0; i < 128; ++i) {
        CacheLine d;
        d.setWord(0, 0xD00D + (i % 4));
        d.setWord(5, 42);
        write(lineAddr(64 + i), d);
    }

    for (std::uint64_t i = 0; i < 96; ++i) {
        CacheLine d;
        d.setWord(0, 0x1000 + i);
        d.setWord(7, ~i);
        write(lineAddr(3 * i), d);
    }

    for (int round = 0; round < 6; ++round) {
        for (std::uint64_t i = 0; i < 64; ++i) {
            CacheLine d;
            d.setWord(0, round & 1 ? 0xAAAA : 0x5555);
            d.setWord(2, i % 2);
            write(lineAddr(i), d);
        }
    }

    for (std::uint64_t i = 0; i < 128; i += 2)
        write(lineAddr(64 + i), CacheLine{});

    return ops;
}

/** Per-address write history: (1-based write index, value) pairs. */
using History = std::map<Addr, std::vector<std::pair<std::uint64_t,
                                                     CacheLine>>>;

/** Whether @p plain was the current value of the history @p h at some
 * write index in [lo, hi] — the equivalence window the persistence
 * domain allows. */
bool
currentSomewhereIn(const std::vector<std::pair<std::uint64_t,
                                               CacheLine>> &h,
                   const CacheLine &plain, std::uint64_t lo,
                   std::uint64_t hi)
{
    for (std::size_t k = 0; k < h.size(); ++k) {
        std::uint64_t start = h[k].first;
        std::uint64_t end =
            k + 1 < h.size() ? h[k + 1].first - 1 : ~0ull;
        if (start <= hi && end >= lo && h[k].second == plain)
            return true;
    }
    return false;
}

using CrashParam = std::tuple<SchemeKind, PersistDomain, CrashPhase>;

class CrashRecoveryTest : public ::testing::TestWithParam<CrashParam>
{
};

TEST_P(CrashRecoveryTest, RecoveredStateMatchesGoldenWindow)
{
    auto [kind, domain, phase] = GetParam();

    const std::vector<Op> ops = buildTrace();
    std::uint64_t total_writes = 0;
    for (const Op &op : ops)
        if (op.write)
            ++total_writes;

    // Sampled crash indices: one at an epoch boundary, two PCG-drawn
    // from the body of the trace, all deterministic per combination.
    constexpr std::uint64_t kEpoch = 8;
    Pcg32 pick(0xC0FFEEull,
               (static_cast<std::uint64_t>(kind) << 8) |
                   (static_cast<std::uint64_t>(domain) << 4) |
                   static_cast<std::uint64_t>(phase));
    std::vector<std::uint64_t> crash_writes = {2 * kEpoch};
    for (int i = 0; i < 2; ++i)
        crash_writes.push_back(
            kEpoch + 2 + pick.below(total_writes - kEpoch - 4));

    for (std::uint64_t crash_w : crash_writes) {
        SimConfig c;
        c.pcm.channels = 1;
        c.pcm.banksPerRank = 8;
        c.metadata.efitCacheBytes = 64 * 16;
        c.metadata.amtCacheBytes = 64 * kLineSize;
        c.metadata.referHMax = 7;
        c.metadata.decayPeriod = 32;
        c.persist.enabled = true;
        c.persist.domain = domain;
        c.persist.epochWrites = kEpoch;
        c.persist.checkpointEpochs = 4;
        // Large enough that no early (buffer-full) commit moves the
        // journal floor off the epoch boundary the window assumes.
        c.persist.metadataBufferRecords = 4096;
        c.persist.crashAtWrite = crash_w;
        c.persist.crashPhase = phase;

        PcmDevice dev(c.pcm, c.channels);
        NvmStore store(c.pcm.capacityBytes);
        auto scheme = makeScheme(kind, c, dev, store);
        PersistenceManager pm(c.persist, dev, store, c.seed);
        scheme->setPersistence(&pm);

        History shadow;
        Tick now = 0;
        std::uint64_t widx = 0;
        for (const Op &op : ops) {
            now += 97;
            if (!op.write)
                continue;
            ++widx;
            pm.onWriteBegin(now);
            AccessResult r = scheme->write(op.addr, op.data, now);
            pm.onWriteEnd(now + r.latency);
            shadow[op.addr].emplace_back(widx, op.data);
        }

        ASSERT_TRUE(pm.crashed())
            << scheme->name() << " crash at " << crash_w
            << " never fired";
        const CrashImage &img = pm.image();
        EXPECT_EQ(img.crashWriteIndex, crash_w);
        EXPECT_EQ(img.domain, domain);
        EXPECT_EQ(img.phase, phase);

        RecoveredState rec =
            recoverFromImage(img, c.persist, scheme->crypto());
        const std::string ctx = std::string(scheme->name()) + " " +
                                (domain == PersistDomain::Adr ? "adr"
                                                              : "eadr") +
                                " W=" + std::to_string(crash_w);

        EXPECT_TRUE(rec.summary.ok)
            << ctx << ": " << rec.summary.countersUnresolved
            << " counters unresolved, "
            << rec.summary.mappingsInvalidated
            << " mappings invalidated";
        EXPECT_EQ(rec.summary.tornRecords, img.tornRecords);

        // Pad safety: the recovered counter floors must clear the
        // ground-truth oracle — a violation means pad reuse.
        PadSafetyReport audit = auditPadSafety(rec, img);
        EXPECT_EQ(audit.violations, 0u)
            << ctx << ": " << audit.violations << " of "
            << audit.countersChecked << " floors below the true counter";

        // Equivalence window: the domain floor F and crash-point
        // upper bound U on the write index the recovered state may
        // reflect.
        std::uint64_t F = domain == PersistDomain::Adr
                              ? ((crash_w - 1) / kEpoch) * kEpoch
                              : crash_w - 1;
        std::uint64_t U =
            phase == CrashPhase::PreBarrier ? crash_w - 1 : crash_w;

        std::unordered_map<Addr, const StoredLine *> content;
        for (const auto &[addr, line] : img.content)
            content[addr] = &line;

        if (img.inPlace) {
            // In-place scheme: surviving content sits at the logical
            // address; every line must decrypt to a window value.
            EXPECT_EQ(rec.summary.liveMappings, 0u) << ctx;
            for (const auto &[addr, line] : img.content) {
                auto it = rec.ctrDecrypt.find(addr);
                ASSERT_NE(it, rec.ctrDecrypt.end())
                    << ctx << ": no recovered counter for addr " << addr;
                CacheLine plain = scheme->crypto().applyPad(
                    addr, it->second, line.data);
                auto hit = shadow.find(addr);
                ASSERT_NE(hit, shadow.end()) << ctx;
                EXPECT_TRUE(
                    currentSomewhereIn(hit->second, plain, F, U))
                    << ctx << ": addr " << addr
                    << " decrypts outside window [" << F << ", " << U
                    << "]";
            }
            // Completeness: everything journal-durable must survive.
            for (const auto &[addr, h] : shadow) {
                if (h.front().first <= F) {
                    EXPECT_TRUE(content.count(addr))
                        << ctx << ": addr " << addr << " written at "
                        << h.front().first << " lost";
                }
            }
        } else {
            // Mapped scheme: walk the recovered AMT, decrypt each
            // target line with the recovered counter, and match the
            // shadow window of the logical address.
            std::uint64_t mappings = 0;
            for (const auto &[addr, phys] : rec.amt) {
                ++mappings;
                auto cit = content.find(phys);
                ASSERT_NE(cit, content.end())
                    << ctx << ": mapping " << addr << " -> " << phys
                    << " targets no surviving line";
                auto kit = rec.ctrDecrypt.find(phys);
                ASSERT_NE(kit, rec.ctrDecrypt.end())
                    << ctx << ": no recovered counter for phys "
                    << phys;
                CacheLine plain = scheme->crypto().applyPad(
                    phys, kit->second, cit->second->data);
                auto hit = shadow.find(addr);
                ASSERT_NE(hit, shadow.end()) << ctx;
                EXPECT_TRUE(
                    currentSomewhereIn(hit->second, plain, F, U))
                    << ctx << ": addr " << addr
                    << " decrypts outside window [" << F << ", " << U
                    << "]";
            }
            EXPECT_EQ(mappings, rec.summary.liveMappings) << ctx;

            // Completeness: every address mapped at or before the
            // journal floor must be recovered.
            for (const auto &[addr, h] : shadow) {
                if (h.front().first <= F) {
                    EXPECT_TRUE(rec.amt.count(addr))
                        << ctx << ": addr " << addr << " mapped at "
                        << h.front().first << " lost";
                }
            }

            // Conservation: re-derived refcounts sum to the recovered
            // mapping count.
            std::uint64_t refs = 0;
            for (const auto &[phys, n] : rec.refs)
                refs += n;
            EXPECT_EQ(refs, mappings) << ctx;
        }

        // The run continued past the snapshot; accounting still
        // closes over the whole trace.
        const SchemeStats &ss = scheme->stats();
        EXPECT_EQ(ss.nvmDataWrites.value() + ss.dedupHits.value(),
                  ss.logicalWrites.value())
            << ctx;
    }
}

INSTANTIATE_TEST_SUITE_P(
    KillAndRecover, CrashRecoveryTest,
    ::testing::Combine(::testing::Values(SchemeKind::Baseline,
                                         SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd,
                                         SchemeKind::EsdFull,
                                         SchemeKind::EsdPlus),
                       ::testing::Values(PersistDomain::Adr,
                                         PersistDomain::Eadr),
                       ::testing::Values(CrashPhase::PreBarrier,
                                         CrashPhase::MidJournal,
                                         CrashPhase::PostData)),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        n += std::get<1>(info.param) == PersistDomain::Adr ? "_adr"
                                                           : "_eadr";
        switch (std::get<2>(info.param)) {
          case CrashPhase::PreBarrier:
            n += "_pre_barrier";
            break;
          case CrashPhase::MidJournal:
            n += "_mid_journal";
            break;
          case CrashPhase::PostData:
            n += "_post_data";
            break;
        }
        return n;
    });

} // namespace
} // namespace esd
