/**
 * @file
 * Determinism golden tests for the parallel sweep engine: the merged
 * sweep report must be byte-identical whatever the worker count and
 * across repeated runs at the same seed. Failures print the first
 * diverging JSON path. Also covers the SweepRunner contract (stable
 * outcome ordering, serialized progress), grid expansion, seed
 * derivation, and the non-fatal CLI validators.
 */

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "exec/sweep_grid.hh"
#include "exec/sweep_runner.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

using exec::SweepGrid;
using exec::SweepJob;
using exec::SweepOutcome;
using exec::SweepRunner;

/** All six schemes over one app — small enough for TSan, rich enough
 * that every scheme's write/verify/metadata machinery runs. */
std::vector<SweepJob>
goldenJobs()
{
    std::vector<SweepJob> jobs;
    for (SchemeKind k : allSchemeKindsExtended()) {
        SweepJob job;
        job.app = "mcf";
        job.scheme = k;
        job.cfg = SimConfig{};
        job.cfg.channels.count = 2;
        job.cfg.channels.wpqDepth = 16;
        job.cfg.seed = exec::deriveJobSeed(42, jobs.size());
        job.records = 3000;
        job.warmup = 500;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::string
mergedReport(const std::vector<SweepJob> &jobs, unsigned workers)
{
    SweepRunner runner(workers);
    std::vector<SweepOutcome> outcomes = runner.run(jobs);
    std::ostringstream os;
    exec::writeSweepReport(os, outcomes);
    return os.str();
}

TEST(SweepDeterminism, ParallelByteIdenticalToSerial)
{
    std::vector<SweepJob> jobs = goldenJobs();
    std::string serial = mergedReport(jobs, 1);
    std::string parallel = mergedReport(jobs, 8);
    ASSERT_EQ(serial, parallel)
        << "first divergence: "
        << exec::firstJsonDivergence(serial, parallel);
}

TEST(SweepDeterminism, RepeatedRunsByteIdentical)
{
    std::vector<SweepJob> jobs = goldenJobs();
    std::string first = mergedReport(jobs, 8);
    for (int repeat = 0; repeat < 3; ++repeat) {
        std::string again = mergedReport(jobs, 8);
        ASSERT_EQ(first, again)
            << "repeat " << repeat << ", first divergence: "
            << exec::firstJsonDivergence(first, again);
    }
}

TEST(SweepDeterminism, ReportIndependentOfOddWorkerCounts)
{
    std::vector<SweepJob> jobs = goldenJobs();
    std::string serial = mergedReport(jobs, 1);
    for (unsigned workers : {2u, 3u, 5u}) {
        std::string other = mergedReport(jobs, workers);
        ASSERT_EQ(serial, other)
            << "workers=" << workers << ", first divergence: "
            << exec::firstJsonDivergence(serial, other);
    }
}

TEST(SweepDeterminism, DivergenceDiagnosticPinpointsPath)
{
    std::string a = R"({"jobs": [{"x": 1, "y": {"z": 2}}]})";
    std::string b = R"({"jobs": [{"x": 1, "y": {"z": 3}}]})";
    EXPECT_EQ("jobs[0].y.z", exec::firstJsonDivergence(a, b));
    EXPECT_EQ("", exec::firstJsonDivergence(a, a));
}

TEST(SweepRunner, OutcomesInJobOrderRegardlessOfCompletion)
{
    // Front-load a long job so short jobs finish first under any
    // scheduling; outcome slots must still match job slots.
    std::vector<SweepJob> jobs;
    for (unsigned i = 0; i < 6; ++i) {
        SweepJob job;
        job.app = "mcf";
        job.scheme = i == 0 ? SchemeKind::Esd : SchemeKind::Baseline;
        job.cfg = SimConfig{};
        job.cfg.seed = exec::deriveJobSeed(7, i);
        job.records = i == 0 ? 6000 : 400;
        job.warmup = 0;
        jobs.push_back(std::move(job));
    }
    SweepRunner runner(4);
    std::vector<SweepOutcome> outcomes = runner.run(jobs);
    ASSERT_EQ(jobs.size(), outcomes.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(schemeName(jobs[i].scheme),
                  outcomes[i].result.schemeName);
        EXPECT_EQ(jobs[i].records, outcomes[i].result.records);
    }
}

TEST(SweepRunner, FailedJobKeepsSlotAndSurfacesInReport)
{
    // Job 1 injects a crash but forbids counter probing, so recovery
    // must fail; the slot keeps its position, carries the error, and
    // the merged report names the failure instead of dropping it.
    std::vector<SweepJob> jobs;
    for (unsigned i = 0; i < 3; ++i) {
        SweepJob job;
        job.app = "mcf";
        job.scheme = SchemeKind::Esd;
        job.cfg = SimConfig{};
        job.cfg.seed = exec::deriveJobSeed(11, i);
        if (i == 1) {
            job.cfg.persist.enabled = true;
            job.cfg.persist.crashAtWrite = 500;
            job.cfg.persist.counterProbeMax = 0;
        }
        job.records = 2000;
        job.warmup = 0;
        jobs.push_back(std::move(job));
    }
    SweepRunner runner(3);
    std::vector<SweepOutcome> outcomes = runner.run(jobs);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[2].ok);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("crash recovery failed"),
              std::string::npos)
        << outcomes[1].error;

    std::ostringstream os;
    exec::writeSweepReport(os, outcomes);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"failed_jobs\": 1"), std::string::npos);
    EXPECT_NE(doc.find("crash recovery failed"), std::string::npos);

    // A healthy grid's report must not even mention the failure key —
    // all-green documents stay byte-identical to pre-failure-handling
    // output.
    std::ostringstream green;
    exec::writeSweepReport(
        green, {outcomes[0], outcomes[2]});
    EXPECT_EQ(green.str().find("failed_jobs"), std::string::npos);
}

TEST(SweepRunner, ProgressFiresOncePerJobWithMatchingIndex)
{
    std::vector<SweepJob> jobs = goldenJobs();
    std::set<std::size_t> seen;
    SweepRunner runner(8);
    runner.run(jobs, [&](std::size_t index, const SweepJob &job,
                         const RunResult &r) {
        // Callback runs under the runner's mutex: plain set insert.
        EXPECT_TRUE(seen.insert(index).second)
            << "index " << index << " reported twice";
        EXPECT_EQ(schemeName(job.scheme), r.schemeName);
    });
    EXPECT_EQ(jobs.size(), seen.size());
}

TEST(SweepSeed, DerivationIsStableAndDecorrelated)
{
    // Pure function of (base, index)...
    EXPECT_EQ(exec::deriveJobSeed(1, 0), exec::deriveJobSeed(1, 0));
    EXPECT_EQ(exec::deriveJobSeed(42, 17), exec::deriveJobSeed(42, 17));
    // ...never zero, and collision-free over a realistic grid.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base : {0ull, 1ull, 42ull}) {
        for (std::uint64_t i = 0; i < 1000; ++i) {
            std::uint64_t s = exec::deriveJobSeed(base, i);
            EXPECT_NE(0u, s);
            seeds.insert(s);
        }
    }
    EXPECT_EQ(3000u, seeds.size());
}

TEST(SweepGridSpec, ParsesDimensionsRangesAndLists)
{
    SweepGrid grid;
    std::string err;
    ASSERT_TRUE(exec::parseSweepSpec("scheme=0..5,channels=1,2,8",
                                     grid, &err))
        << err;
    EXPECT_EQ(6u, grid.schemes.size());
    ASSERT_EQ(3u, grid.channels.size());
    EXPECT_EQ(1u, grid.channels[0]);
    EXPECT_EQ(2u, grid.channels[1]);
    EXPECT_EQ(8u, grid.channels[2]);

    SweepGrid named;
    ASSERT_TRUE(exec::parseSweepSpec("app=mcf,lbm,scheme=esd,wpq_depth=4",
                                     named, &err))
        << err;
    EXPECT_EQ(2u, named.apps.size());
    ASSERT_EQ(1u, named.schemes.size());
    EXPECT_EQ(SchemeKind::Esd, named.schemes[0]);
    ASSERT_EQ(1u, named.wpqDepths.size());
    EXPECT_EQ(4u, named.wpqDepths[0]);
}

TEST(SweepGridSpec, RejectsBadInputWithMessage)
{
    SweepGrid grid;
    std::string err;
    EXPECT_FALSE(exec::parseSweepSpec("scheme=7", grid, &err));
    EXPECT_NE(std::string::npos, err.find("0..5"));

    err.clear();
    EXPECT_FALSE(exec::parseSweepSpec("app=nosuchapp", grid, &err));
    EXPECT_NE(std::string::npos, err.find("nosuchapp"));

    err.clear();
    EXPECT_FALSE(exec::parseSweepSpec("flux=1", grid, &err));
    EXPECT_NE(std::string::npos, err.find("flux"));

    err.clear();
    EXPECT_FALSE(exec::parseSweepSpec("1,2,3", grid, &err));
    EXPECT_FALSE(err.empty());

    err.clear();
    EXPECT_FALSE(exec::parseSweepSpec("channels=0", grid, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SweepGridSpec, ExpansionOrderAndSeedsAreStable)
{
    SweepGrid grid;
    std::string err;
    ASSERT_TRUE(exec::parseSweepSpec("app=mcf,lbm,scheme=0,3,channels=1,2",
                                     grid, &err))
        << err;
    SimConfig base;
    std::vector<SweepJob> jobs =
        exec::expandGrid(grid, base, 1000, 100, 42);
    ASSERT_EQ(8u, jobs.size());
    // app-major, then scheme, then channels.
    EXPECT_EQ("mcf", jobs[0].app);
    EXPECT_EQ(SchemeKind::Baseline, jobs[0].scheme);
    EXPECT_EQ(1u, jobs[0].cfg.channels.count);
    EXPECT_EQ(2u, jobs[1].cfg.channels.count);
    EXPECT_EQ(SchemeKind::Esd, jobs[2].scheme);
    EXPECT_EQ("lbm", jobs[4].app);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(exec::deriveJobSeed(42, i), jobs[i].cfg.seed);
}

TEST(CliValidation, TryParseSchemeKindRejectsUnknown)
{
    EXPECT_FALSE(tryParseSchemeKind("banana").has_value());
    EXPECT_FALSE(tryParseSchemeKind("6").has_value());
    EXPECT_FALSE(tryParseSchemeKind("").has_value());
    ASSERT_TRUE(tryParseSchemeKind("esd").has_value());
    EXPECT_EQ(SchemeKind::Esd, *tryParseSchemeKind("3"));
    EXPECT_EQ(SchemeKind::EsdPlus, *tryParseSchemeKind("esd+"));
}

TEST(CliValidation, TryFindAppRejectsUnknown)
{
    EXPECT_EQ(nullptr, tryFindApp("nosuchapp"));
    EXPECT_EQ(nullptr, tryFindApp(""));
    const AppProfile *p = tryFindApp("mcf");
    ASSERT_NE(nullptr, p);
    EXPECT_EQ("mcf", p->name);
}

} // namespace
} // namespace esd
