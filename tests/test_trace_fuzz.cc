/**
 * @file
 * Format-fuzz wall for the streaming trace frontend.
 *
 * Every malformed input must die through esd_fatal — a clean exit(1)
 * with the offending file named — never a crash, hang, or silent
 * misparse. The wall has two layers:
 *
 *   - targeted negatives: one EXPECT_EXIT per distinct corruption
 *     class, pinned to its diagnostic message;
 *   - a seeded fuzzer: valid traces in all three formats are randomly
 *     truncated, bit-flipped, and spliced, and each mutant is consumed
 *     in a forked child that must terminate by exit (any code), never
 *     by signal. Under the ASan/UBSan CI jobs this turns memory errors
 *     in the decoders into failures here.
 *
 * The fuzz seed derives from ESD_FUZZ_SEED when set (the nightly
 * sweep passes the CI run id), else a fixed default so local runs
 * reproduce.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_frontend.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

class TraceFuzzTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("esd_tracefuzz_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    file(const char *name) const
    {
        return (dir_ / name).string();
    }

    std::string
    writeBytes(const char *name, const std::string &bytes) const
    {
        std::string path = file(name);
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        return path;
    }

    std::filesystem::path dir_;
};

/** Drain @p path through a frontend (the EXPECT_EXIT statement). */
void
consume(const std::string &path)
{
    TraceConfig tc;
    TraceFrontend f(path, tc);
    TraceRecord rec;
    while (f.next(rec)) {
    }
}

/** A small valid capture in @p format. */
std::string
makeValid(const std::filesystem::path &dir, const char *name,
          TraceFormat format, int records = 64)
{
    std::string path = (dir / name).string();
    TraceConfig tc;
    tc.format = format;
    TraceCaptureWriter writer(path, tc);
    SyntheticWorkload synth(findApp("mcf"), 5);
    TraceRecord rec;
    for (int i = 0; i < records; ++i) {
        synth.next(rec);
        writer.write(rec);
    }
    writer.close();
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------- targeted negatives
// Each corruption class dies with its own diagnostic. The same
// messages are pinned again at the CLI level by the WILL_FAIL ctests
// over the committed fixtures in tests/traces/.

TEST_F(TraceFuzzTest, VersionSkewIsFatal)
{
    std::string p =
        writeBytes("skew.bin",
                   std::string("ESDT") + '\x09' +
                       std::string("\x00\x00\x00", 3));
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "unsupported trace version 9");
}

TEST_F(TraceFuzzTest, UnknownHeaderFlagsAreFatal)
{
    std::string p =
        writeBytes("flags.bin", std::string("ESDT") + '\x02' + '\xfe' +
                                    std::string("\x00\x00", 2));
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "unknown trace flags 0xfe");
}

TEST_F(TraceFuzzTest, ReservedHeaderBytesAreFatal)
{
    std::string p =
        writeBytes("resv.bin", std::string("ESDT") + '\x02' + '\x01' +
                                   '\x07' + '\x00');
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "reserved bytes set");
}

TEST_F(TraceFuzzTest, OversizedLengthPrefixIsFatal)
{
    // Valid v2 header, then a record claiming 200 payload bytes.
    std::string bytes = std::string("ESDT") + '\x02' + '\x01' +
                        std::string("\x00\x00", 2) + '\xc8';
    bytes += std::string(200, 'x');
    std::string p = writeBytes("len.bin", bytes);
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "bad record length 200");
}

TEST_F(TraceFuzzTest, TruncatedRecordIsFatal)
{
    std::string whole = slurp(makeValid(dir_, "whole.bin",
                                        TraceFormat::Binary));
    // Cut mid-record: somewhere past the header, not on a boundary.
    std::string p =
        writeBytes("trunc.bin", whole.substr(0, whole.size() - 17));
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1), "truncated");
}

TEST_F(TraceFuzzTest, NonHexPayloadIsFatal)
{
    std::string line = "W 1000 " + std::string(127, 'a') + "g 10\n";
    std::string p = writeBytes("hex.trace", line);
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "bad hex data");
}

TEST_F(TraceFuzzTest, ShortPayloadIsFatal)
{
    std::string line = "W 1000 " + std::string(40, 'a') + " 10\n";
    std::string p = writeBytes("short.trace", line);
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "write payload must be 128 hex chars");
}

TEST_F(TraceFuzzTest, OverlongLineIsFatal)
{
    std::string p =
        writeBytes("long.trace", "W " + std::string(600, '1') + "\n");
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "line exceeds 512 bytes");
}

TEST_F(TraceFuzzTest, TrailingJunkIsFatal)
{
    std::string p =
        writeBytes("junk.trace", "W 1000 10 extra stuff here\n");
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "trailing junk");
}

TEST_F(TraceFuzzTest, BadOpByteIsFatal)
{
    // Legacy v1 framing: first post-magic byte is the op; 7 is not an
    // op and not a known version either.
    std::string p = writeBytes("op.bin", std::string("ESDT") + '\x07');
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "unsupported trace version 7");
}

TEST_F(TraceFuzzTest, MidStreamGzipCorruptionIsFatal)
{
    std::string whole =
        slurp(makeValid(dir_, "ok.gz", TraceFormat::Gzip, 512));
    ASSERT_GT(whole.size(), 200u);
    // Flip a byte in the deflate body (past the 10-byte gzip header):
    // either inflate chokes or the trailing CRC check does.
    whole[whole.size() / 2] ^= 0x40;
    std::string p = writeBytes("bad.gz", whole);
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "gzip");
}

TEST_F(TraceFuzzTest, TruncatedGzipIsFatal)
{
    std::string whole =
        slurp(makeValid(dir_, "ok2.gz", TraceFormat::Gzip, 512));
    std::string p =
        writeBytes("cut.gz", whole.substr(0, whole.size() / 2));
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "gzip");
}

TEST_F(TraceFuzzTest, TrailingGarbageAfterGzipIsFatal)
{
    std::string whole =
        slurp(makeValid(dir_, "ok3.gz", TraceFormat::Gzip));
    std::string p = writeBytes("tail.gz", whole + "garbage");
    EXPECT_EXIT(consume(p), ::testing::ExitedWithCode(1),
                "trailing bytes after gzip stream");
}

TEST_F(TraceFuzzTest, MissingFileIsFatal)
{
    EXPECT_EXIT(consume(file("nonexistent.trace")),
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST_F(TraceFuzzTest, EmptyFileIsValidAndEmpty)
{
    std::string p = writeBytes("empty.trace", "");
    TraceConfig tc;
    TraceFrontend f(p, tc);
    TraceRecord rec;
    EXPECT_FALSE(f.next(rec));
    EXPECT_EQ(f.recordsDecoded(), 0u);
}

// ---------------------------------------------- seeded fuzz sweep

/** Consume @p path in a forked child; the child must terminate by
 * exit(0) (parsed fine) or exit(1) (esd_fatal), never by signal and
 * never by hanging. @return true when termination was clean. */
bool
consumesCleanly(const std::string &path, std::string &why)
{
    pid_t pid = ::fork();
    if (pid < 0) {
        why = "fork failed";
        return false;
    }
    if (pid == 0) {
        // Child: parse to exhaustion. esd_fatal exits 1 on malformed
        // input; anything else lands at _exit(0).
        TraceConfig tc;
        tc.readAhead = 32;
        TraceFrontend f(path, tc);
        TraceRecord rec;
        while (f.next(rec)) {
        }
        ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFSIGNALED(status)) {
        why = "killed by signal " + std::to_string(WTERMSIG(status));
        return false;
    }
    if (!WIFEXITED(status)) {
        why = "did not exit";
        return false;
    }
    int code = WEXITSTATUS(status);
    if (code != 0 && code != 1) {
        why = "exit code " + std::to_string(code);
        return false;
    }
    return true;
}

std::uint64_t
fuzzSeed()
{
    if (const char *env = std::getenv("ESD_FUZZ_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 0xe5d0f022u;  // fixed default: local runs reproduce
}

TEST_F(TraceFuzzTest, CorruptedTracesNeverCrashTheDecoder)
{
    const TraceFormat formats[] = {TraceFormat::Text,
                                   TraceFormat::Gzip,
                                   TraceFormat::Binary};
    std::string base[3];
    base[0] = slurp(makeValid(dir_, "base.trace", TraceFormat::Text));
    base[1] = slurp(makeValid(dir_, "base.gz", TraceFormat::Gzip));
    base[2] = slurp(makeValid(dir_, "base.bin", TraceFormat::Binary));

    Pcg32 rng(fuzzSeed());
    constexpr int kIters = 120;
    for (int i = 0; i < kIters; ++i) {
        std::string bytes = base[i % 3];
        switch (rng.below(4)) {
          case 0:  // truncate anywhere, header included
            bytes.resize(rng.below(
                static_cast<std::uint32_t>(bytes.size() + 1)));
            break;
          case 1: {  // flip 1..8 random bits
            unsigned flips = 1 + rng.below(8);
            for (unsigned f = 0; f < flips && !bytes.empty(); ++f) {
                std::size_t at = rng.below(
                    static_cast<std::uint32_t>(bytes.size()));
                bytes[at] ^= static_cast<char>(1u << rng.below(8));
            }
            break;
          }
          case 2: {  // splice a random garbage run into the middle
            std::size_t at = bytes.empty()
                                 ? 0
                                 : rng.below(static_cast<std::uint32_t>(
                                       bytes.size()));
            std::string junk(1 + rng.below(64), '\0');
            for (char &c : junk)
                c = static_cast<char>(rng.below(256));
            bytes.insert(at, junk);
            break;
          }
          default:  // swap two halves (desynchronizes framing)
            if (bytes.size() > 2) {
                std::size_t cut = 1 + rng.below(static_cast<
                                                std::uint32_t>(
                    bytes.size() - 1));
                bytes = bytes.substr(cut) + bytes.substr(0, cut);
            }
            break;
        }
        std::string p = writeBytes("mutant", bytes);
        std::string why;
        EXPECT_TRUE(consumesCleanly(p, why))
            << "iteration " << i << " (seed " << fuzzSeed()
            << ", format "
            << static_cast<int>(formats[i % 3]) << "): " << why;
    }
}

} // namespace
} // namespace esd
