/**
 * @file
 * Tests for the common substrate: types, RNG, statistics, config.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace esd
{
namespace
{

// --------------------------------------------------------------- types

TEST(CacheLineType, DefaultIsZero)
{
    CacheLine l;
    EXPECT_TRUE(l.isZero());
    for (std::size_t i = 0; i < kLineSize; ++i)
        EXPECT_EQ(l[i], 0);
}

TEST(CacheLineType, WordRoundTrip)
{
    CacheLine l;
    for (std::size_t i = 0; i < kWordsPerLine; ++i)
        l.setWord(i, 0x1111111111111111ull * (i + 1));
    for (std::size_t i = 0; i < kWordsPerLine; ++i)
        EXPECT_EQ(l.word(i), 0x1111111111111111ull * (i + 1));
    EXPECT_FALSE(l.isZero());
}

TEST(CacheLineType, EqualityIsContentBased)
{
    CacheLine a, b;
    a.setWord(3, 42);
    EXPECT_NE(a, b);
    b.setWord(3, 42);
    EXPECT_EQ(a, b);
}

TEST(CacheLineType, ContentHashDistinguishes)
{
    CacheLine a, b;
    a.setWord(0, 1);
    b.setWord(0, 2);
    EXPECT_NE(a.contentHash(), b.contentHash());
    EXPECT_EQ(a.contentHash(), a.contentHash());
}

TEST(CacheLineType, ConstructFromBytes)
{
    std::uint8_t raw[kLineSize];
    for (std::size_t i = 0; i < kLineSize; ++i)
        raw[i] = static_cast<std::uint8_t>(i);
    CacheLine l(raw);
    for (std::size_t i = 0; i < kLineSize; ++i)
        EXPECT_EQ(l[i], i);
}

TEST(AddressHelpers, LineAlignAndIndex)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(129), 128u);
    EXPECT_EQ(lineIndex(129), 2u);
}

// ----------------------------------------------------------------- rng

TEST(Pcg32, Deterministic)
{
    Pcg32 a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(10);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, ChanceFrequency)
{
    Pcg32 rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// --------------------------------------------------------------- stats

TEST(LatencyStat, MeanMinMax)
{
    LatencyStat s;
    s.sample(10);
    s.sample(20);
    s.sample(30);
    EXPECT_DOUBLE_EQ(s.mean(), 20.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(LatencyStat, EmptyIsZero)
{
    LatencyStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
    EXPECT_TRUE(s.cdf(10).empty());
}

TEST(LatencyStat, PercentileNearestRank)
{
    LatencyStat s;
    for (int i = 1; i <= 100; ++i)
        s.sample(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(LatencyStat, PercentileMonotone)
{
    LatencyStat s;
    Pcg32 rng(12);
    for (int i = 0; i < 5000; ++i)
        s.sample(rng.uniform() * 1000);
    double last = 0;
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        double v = s.percentile(p);
        EXPECT_GE(v, last);
        last = v;
    }
}

TEST(LatencyStat, CdfIsMonotoneAndComplete)
{
    LatencyStat s;
    Pcg32 rng(13);
    for (int i = 0; i < 1000; ++i)
        s.sample(rng.uniform() * 100);
    auto cdf = s.cdf(20);
    ASSERT_EQ(cdf.size(), 20u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(RefCountBuckets, BucketBoundaries)
{
    EXPECT_EQ(RefCountBuckets::bucketOf(1), 0u);
    EXPECT_EQ(RefCountBuckets::bucketOf(2), 1u);
    EXPECT_EQ(RefCountBuckets::bucketOf(10), 1u);
    EXPECT_EQ(RefCountBuckets::bucketOf(11), 2u);
    EXPECT_EQ(RefCountBuckets::bucketOf(100), 2u);
    EXPECT_EQ(RefCountBuckets::bucketOf(1000), 3u);
    EXPECT_EQ(RefCountBuckets::bucketOf(1001), 4u);
}

TEST(RefCountBuckets, VolumeAccounting)
{
    RefCountBuckets b;
    b.add(1);     // num1: 1 line, 1 write
    b.add(5);     // num10: 1 line, 5 writes
    b.add(2000);  // num1000+: 1 line, 2000 writes
    EXPECT_EQ(b.totalLines(), 3u);
    EXPECT_EQ(b.totalVolume(), 2006u);
    EXPECT_EQ(b.lines(0), 1u);
    EXPECT_EQ(b.volume(4), 2000u);
}

// --------------------------------------------------------------- config

TEST(SimConfig, DefaultsMatchTableI)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.pcm.readLatency, 75u);
    EXPECT_EQ(cfg.pcm.writeLatency, 150u);
    EXPECT_DOUBLE_EQ(cfg.pcm.readEnergy, 1490.0);
    EXPECT_DOUBLE_EQ(cfg.pcm.writeEnergy, 6750.0);
    EXPECT_EQ(cfg.pcm.capacityBytes, 16ull << 30);
    EXPECT_EQ(cfg.cache.l3Size, 16ull * 1024 * 1024);
    EXPECT_EQ(cfg.metadata.efitCacheBytes, 512u * 1024);
    EXPECT_EQ(cfg.metadata.amtCacheBytes, 512u * 1024);
    EXPECT_EQ(cfg.crypto.sha1Latency, 321u);
    EXPECT_EQ(cfg.crypto.md5Latency, 312u);
}

TEST(SimConfig, SummaryMentionsKeyParameters)
{
    SimConfig cfg;
    std::string s = cfg.summary();
    EXPECT_NE(s.find("16 GB"), std::string::npos);
    EXPECT_NE(s.find("75 ns"), std::string::npos);
    EXPECT_NE(s.find("LRCU"), std::string::npos);
    EXPECT_NE(s.find("512 KB"), std::string::npos);
}

TEST(Logging, WarnCountsAndQuiet)
{
    setQuiet(true);
    std::uint64_t before = warnCount();
    esd_warn("test warning %d", 1);
    EXPECT_EQ(warnCount(), before + 1);
    setQuiet(false);
}

TEST(Logging, FormatProducesPrintfOutput)
{
    EXPECT_EQ(detail::format("x=%d s=%s", 5, "abc"), "x=5 s=abc");
}

} // namespace
} // namespace esd
