/**
 * @file
 * End-to-end fault-injection campaign: media bit flips on stored
 * (encrypted) lines must be transparently corrected by the per-word
 * SEC-DED on the read path — through decryption — and double faults
 * must be detected, never silently miscorrected. Exercises the full
 * store -> encrypt -> corrupt -> decrypt -> scrub pipeline for every
 * scheme.
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/simulator.hh"
#include "nvm/nvm_store.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
cfg()
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    c.pcm.rowBufferLines = 0;
    return c;
}

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    l.setWord(5, ~v);
    return l;
}

/** Find the physical line backing logical addr 0 by scanning the
 * store (schemes remap; tests shouldn't reach into their tables). */
std::optional<Addr>
onlyResidentLine(const NvmStore &store, Addr max_scan)
{
    std::optional<Addr> found;
    for (Addr a = 0; a < max_scan; a += kLineSize) {
        if (store.contains(a)) {
            if (found)
                return std::nullopt;  // ambiguous
            found = a;
        }
    }
    return found;
}

class FaultInjectionTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(FaultInjectionTest, SingleBitFaultCorrectedThroughDecryption)
{
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(GetParam(), c, dev, store);

    CacheLine data = lineWith(0xfeedface);
    scheme->write(0, data, 0);
    auto phys = onlyResidentLine(store, 1 << 20);
    ASSERT_TRUE(phys.has_value());

    Pcg32 rng(1);
    setQuiet(true);
    for (int trial = 0; trial < 64; ++trial) {
        // Flip one random stored bit (payload or ECC), read, verify.
        unsigned bit = rng.below(576);
        ASSERT_TRUE(store.corruptBit(*phys, bit));
        CacheLine out;
        scheme->read(0, out, 100000 + trial * 1000);
        EXPECT_EQ(out, data) << "bit " << bit;
        // Repair the stored copy for the next trial (the scheme
        // corrects the returned data, not the media).
        store.corruptBit(*phys, bit);
    }
    setQuiet(false);
    EXPECT_EQ(scheme->stats().eccCorrectedReads.value(), 64u);
    EXPECT_EQ(scheme->stats().eccUncorrectableReads.value(), 0u);
}

TEST_P(FaultInjectionTest, DoubleBitFaultDetectedNotMiscorrected)
{
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(GetParam(), c, dev, store);

    CacheLine data = lineWith(0x1234);
    scheme->write(0, data, 0);
    auto phys = onlyResidentLine(store, 1 << 20);
    ASSERT_TRUE(phys.has_value());

    // Two flips within word 0 of the payload.
    ASSERT_TRUE(store.corruptBit(*phys, 3));
    ASSERT_TRUE(store.corruptBit(*phys, 17));

    setQuiet(true);
    CacheLine out;
    scheme->read(0, out, 100000);
    setQuiet(false);
    EXPECT_EQ(scheme->stats().eccUncorrectableReads.value(), 1u);
    EXPECT_EQ(scheme->stats().eccCorrectedReads.value(), 0u);
    // The fault is reported, not silently "fixed" into wrong data:
    // the returned line differs from the original in word 0 only.
    EXPECT_NE(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FaultInjectionTest,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::DedupSha1,
                      SchemeKind::DeWrite, SchemeKind::Esd,
                      SchemeKind::EsdPlus),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        std::string n = schemeName(info.param);
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(FaultInjection, CorruptBitOnEmptyLineFails)
{
    NvmStore store(1 << 20);
    EXPECT_FALSE(store.corruptBit(0, 3));
}

TEST(FaultInjection, CleanRunHasNoEccEvents)
{
    SimConfig c = cfg();
    SyntheticWorkload trace(findApp("gcc"), 1);
    Simulator sim(c, SchemeKind::Esd);
    sim.run(trace, 10000, 1000);
    EXPECT_EQ(sim.scheme().stats().eccCorrectedReads.value(), 0u);
    EXPECT_EQ(sim.scheme().stats().eccUncorrectableReads.value(), 0u);
}

} // namespace
} // namespace esd
