/**
 * @file
 * Edge cases and failure-injection tests across modules: fatal error
 * paths (death tests), degenerate traces, metadata stress, and
 * device-model properties.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/random.hh"
#include "core/simulator.hh"
#include "dedup/efit.hh"
#include "nvm/pcm_device.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

// ------------------------------------------------------- death tests

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TextTraceReader("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeath, MalformedOpIsFatal)
{
    auto path = std::filesystem::temp_directory_path() /
                ("esd_bad_trace_" + std::to_string(::getpid()));
    {
        std::ofstream out(path);
        out << "X 40 12\n";
    }
    TextTraceReader reader(path.string());
    TraceRecord rec;
    EXPECT_EXIT(reader.next(rec), ::testing::ExitedWithCode(1), "bad op");
    std::filesystem::remove(path);
}

TEST(TraceIoDeath, TruncatedWriteDataIsFatal)
{
    auto path = std::filesystem::temp_directory_path() /
                ("esd_short_trace_" + std::to_string(::getpid()));
    {
        std::ofstream out(path);
        out << "W 40 deadbeef 12\n";  // needs 128 hex chars
    }
    TextTraceReader reader(path.string());
    TraceRecord rec;
    EXPECT_EXIT(reader.next(rec), ::testing::ExitedWithCode(1),
                "hex chars");
    std::filesystem::remove(path);
}

TEST(TraceIoDeath, NotABinaryTraceIsFatal)
{
    auto path = std::filesystem::temp_directory_path() /
                ("esd_not_bin_" + std::to_string(::getpid()));
    {
        std::ofstream out(path);
        out << "plain text";
    }
    EXPECT_EXIT(BinaryTraceReader(path.string()),
                ::testing::ExitedWithCode(1), "not an ESD binary trace");
    std::filesystem::remove(path);
}

TEST(WorkloadsDeath, UnknownAppIsFatal)
{
    EXPECT_EXIT(findApp("no-such-app"), ::testing::ExitedWithCode(1),
                "unknown application");
}

TEST(SchemeFactoryDeath, UnknownSchemeIsFatal)
{
    EXPECT_EXIT(parseSchemeKind("quantum"), ::testing::ExitedWithCode(1),
                "unknown scheme");
}

TEST(SimulatorDeath, TraceShorterThanWarmupIsFatal)
{
    VectorTrace trace;
    TraceRecord r;
    r.op = OpType::Write;
    trace.push(r);
    SimConfig cfg;
    Simulator sim(cfg, SchemeKind::Baseline);
    EXPECT_EXIT(sim.run(trace, 0, 100), ::testing::ExitedWithCode(1),
                "warmup");
}

// ------------------------------------------------- degenerate traces

TEST(Simulator, PureWriteTrace)
{
    VectorTrace trace;
    Pcg32 rng(1);
    for (int i = 0; i < 500; ++i) {
        TraceRecord r;
        r.op = OpType::Write;
        r.addr = static_cast<Addr>(i) * kLineSize;
        rng.fillLine(r.data);
        r.icount = 50;
        trace.push(r);
    }
    SimConfig cfg;
    RunResult res = runWorkload(cfg, SchemeKind::Esd, trace, 0, 0);
    EXPECT_EQ(res.logicalWrites, 500u);
    EXPECT_EQ(res.logicalReads, 0u);
    EXPECT_GT(res.ipc, 0.0);
}

TEST(Simulator, PureReadTrace)
{
    VectorTrace trace;
    for (int i = 0; i < 500; ++i) {
        TraceRecord r;
        r.op = OpType::Read;
        r.addr = static_cast<Addr>(i % 32) * kLineSize;
        r.icount = 50;
        trace.push(r);
    }
    SimConfig cfg;
    for (SchemeKind k : allSchemeKinds()) {
        trace.reset();
        RunResult res = runWorkload(cfg, k, trace, 0, 0);
        EXPECT_EQ(res.logicalReads, 500u) << schemeName(k);
        EXPECT_EQ(res.dedupHits, 0u);
    }
}

TEST(Simulator, SingleRecordTrace)
{
    VectorTrace trace;
    TraceRecord r;
    r.op = OpType::Write;
    r.addr = 0;
    r.data.setWord(0, 1);
    r.icount = 10;
    trace.push(r);
    SimConfig cfg;
    RunResult res = runWorkload(cfg, SchemeKind::Esd, trace, 0, 0);
    EXPECT_EQ(res.records, 1u);
    EXPECT_EQ(res.writeLatency.count(), 1u);
}

TEST(Simulator, ZeroLineOnlyTraceFullyDedups)
{
    VectorTrace trace;
    for (int i = 0; i < 1000; ++i) {
        TraceRecord r;
        r.op = OpType::Write;
        r.addr = static_cast<Addr>(i) * kLineSize;
        r.icount = 20;
        trace.push(r);  // all-zero payloads
    }
    SimConfig cfg;
    RunResult res = runWorkload(cfg, SchemeKind::Esd, trace, 0, 0);
    // One unique seed write plus one saturation rewrite per 255
    // dedups (referH is 8 bits): 1000 writes -> <= 4 stored copies.
    EXPECT_GE(res.dedupHits, 995u);
    EXPECT_LE(res.nvmDataWrites, 5u);
    EXPECT_EQ(res.dedupHits + res.nvmDataWrites, 1000u);
}

// ------------------------------------------------- metadata stress

TEST(Efit, SingleSetThrashKeepsInvariant)
{
    MetadataConfig cfg;
    cfg.efitCacheBytes = 2 * 16;  // one 2-way set
    cfg.efitAssoc = 2;
    cfg.decayPeriod = 3;
    Efit efit(cfg);
    Pcg32 rng(9);
    for (int i = 0; i < 10000; ++i) {
        LineEcc ecc = rng.next64();
        if (Efit::Entry *e = efit.lookup(ecc)) {
            efit.bumpRef(e);
        } else {
            efit.insert(ecc, static_cast<Addr>(rng.below(1 << 20)) *
                                 kLineSize);
        }
    }
    EXPECT_LE(efit.validEntries(), efit.capacityEntries());
    EXPECT_EQ(efit.stats().lookups.value(), 10000u);
    EXPECT_GT(efit.stats().evictions.value(), 0u);
    EXPECT_GT(efit.stats().decayRounds.value(), 0u);
}

// ------------------------------------------- device-model properties

/** Completion times at one bank are monotone in arrival order. */
TEST(PcmDevice, PerBankCompletionMonotone)
{
    PcmConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 2;
    cfg.writeQueueDepth = 1024;
    cfg.rowBufferLines = 0;
    PcmDevice dev(cfg);
    Pcg32 rng(4);
    Tick now = 0;
    Tick last_complete[2] = {0, 0};
    for (int i = 0; i < 2000; ++i) {
        now += rng.below(100);
        Addr addr = static_cast<Addr>(rng.below(64)) * kLineSize;
        OpType t = rng.chance(0.5) ? OpType::Read : OpType::Write;
        NvmAccessResult r = dev.access(t, addr, now);
        unsigned b = dev.bankOf(addr);
        EXPECT_GE(r.complete, last_complete[b]);
        EXPECT_GE(r.start, now);
        last_complete[b] = r.complete;
    }
}

/** Energy equals the per-op tariff exactly. */
TEST(PcmDevice, EnergyIsExactTariff)
{
    PcmConfig cfg;
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    Pcg32 rng(5);
    std::uint64_t reads = 0, writes = 0;
    for (int i = 0; i < 1000; ++i) {
        OpType t = rng.chance(0.4) ? OpType::Read : OpType::Write;
        dev.access(t, static_cast<Addr>(rng.below(4096)) * kLineSize,
                   static_cast<Tick>(i) * 10);
        (t == OpType::Read ? reads : writes) += 1;
    }
    EXPECT_DOUBLE_EQ(dev.stats().totalEnergy(),
                     reads * cfg.readEnergy + writes * cfg.writeEnergy);
}

} // namespace
} // namespace esd
