/**
 * @file
 * Tests for the banked PCM timing/energy model and the content store.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/random.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"

namespace esd
{
namespace
{

PcmConfig
smallConfig()
{
    PcmConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 4;
    cfg.writeQueueDepth = 2;
    cfg.rowBufferLines = 0;  // timing tests use raw array latencies
    return cfg;
}

TEST(PcmDevice, IdleReadTakesArrayLatency)
{
    PcmDevice dev(smallConfig());
    NvmAccessResult r = dev.access(OpType::Read, 0, 1000);
    EXPECT_EQ(r.start, 1000u);
    EXPECT_EQ(r.complete, 1075u);
    EXPECT_EQ(r.queueDelay, 0u);
    EXPECT_EQ(r.issuerStall, 0u);
}

TEST(PcmDevice, IdleWriteTakesWriteLatency)
{
    PcmDevice dev(smallConfig());
    NvmAccessResult r = dev.access(OpType::Write, 0, 500);
    EXPECT_EQ(r.complete, 650u);
}

TEST(PcmDevice, SameBankRequestsSerialize)
{
    PcmDevice dev(smallConfig());
    // Lines 0 and 4 both map to bank 0 with 4 banks.
    NvmAccessResult r1 = dev.access(OpType::Write, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Read, 4 * kLineSize, 0);
    EXPECT_EQ(r1.complete, 150u);
    EXPECT_EQ(r2.start, 150u);  // waits for the write
    EXPECT_EQ(r2.queueDelay, 150u);
    EXPECT_EQ(r2.complete, 225u);
}

TEST(PcmDevice, DifferentBanksProceedInParallel)
{
    PcmDevice dev(smallConfig());
    NvmAccessResult r1 = dev.access(OpType::Write, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Read, kLineSize, 0);
    EXPECT_EQ(r1.complete, 150u);
    EXPECT_EQ(r2.complete, 75u);  // bank 1 was idle
}

TEST(PcmDevice, BankMappingIsLineInterleaved)
{
    PcmDevice dev(smallConfig());
    EXPECT_EQ(dev.bankOf(0), 0u);
    EXPECT_EQ(dev.bankOf(kLineSize), 1u);
    EXPECT_EQ(dev.bankOf(4 * kLineSize), 0u);
    // Sub-line offsets map with their line.
    EXPECT_EQ(dev.bankOf(kLineSize + 5), 1u);
}

TEST(PcmDevice, WriteQueueBackpressureStallsIssuer)
{
    PcmDevice dev(smallConfig());  // depth 2
    // Fill the queue with two writes to the same bank (serialized).
    dev.access(OpType::Write, 0, 0);                   // completes 150
    dev.access(OpType::Write, 4 * kLineSize, 0);       // completes 300
    // Third write arrives while both are outstanding: stall until the
    // earliest (150) retires.
    NvmAccessResult r = dev.access(OpType::Write, 8 * kLineSize, 10);
    EXPECT_EQ(r.issuerStall, 140u);
    EXPECT_EQ(dev.stats().writeQueueStalls.value(), 1u);
}

TEST(PcmDevice, NoStallAfterCompletionsDrain)
{
    PcmDevice dev(smallConfig());
    dev.access(OpType::Write, 0, 0);
    dev.access(OpType::Write, kLineSize, 0);
    // Arrives after both completed.
    NvmAccessResult r = dev.access(OpType::Write, 2 * kLineSize, 1000);
    EXPECT_EQ(r.issuerStall, 0u);
}

TEST(PcmDevice, EnergyAccounting)
{
    PcmDevice dev(smallConfig());
    dev.access(OpType::Read, 0, 0);
    dev.access(OpType::Read, kLineSize, 0);
    dev.access(OpType::Write, 2 * kLineSize, 0);
    EXPECT_DOUBLE_EQ(dev.stats().readEnergy, 2 * 1490.0);
    EXPECT_DOUBLE_EQ(dev.stats().writeEnergy, 6750.0);
    EXPECT_DOUBLE_EQ(dev.stats().totalEnergy(), 2 * 1490.0 + 6750.0);
    EXPECT_EQ(dev.stats().reads.value(), 2u);
    EXPECT_EQ(dev.stats().writes.value(), 1u);
}

TEST(PcmDevice, ResetStatsClears)
{
    PcmDevice dev(smallConfig());
    dev.access(OpType::Write, 0, 0);
    dev.resetStats();
    EXPECT_EQ(dev.stats().writes.value(), 0u);
    EXPECT_DOUBLE_EQ(dev.stats().totalEnergy(), 0.0);
}

TEST(PcmDevice, ReadPriorityBypassesQueuedWrites)
{
    PcmConfig cfg = smallConfig();
    cfg.readPriority = true;
    cfg.writeQueueDepth = 64;
    PcmDevice dev(cfg);
    // Pile writes onto bank 0.
    for (int i = 0; i < 16; ++i)
        dev.access(OpType::Write, 0, 0);
    // A read waits for at most one write service, not the backlog.
    NvmAccessResult r = dev.access(OpType::Read, 4 * kLineSize, 10);
    EXPECT_LE(r.queueDelay, cfg.writeLatency);
}

TEST(PcmDevice, ReadPriorityChainsReads)
{
    PcmConfig cfg = smallConfig();
    cfg.readPriority = true;
    PcmDevice dev(cfg);
    NvmAccessResult r1 = dev.access(OpType::Read, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Read, 4 * kLineSize, 0);
    EXPECT_EQ(r1.complete, 75u);
    EXPECT_EQ(r2.start, 75u);  // same bank: reads serialize
}

TEST(PcmDevice, HeavyWriteStreamDelaysReads)
{
    // The read/write interference Section IV-C relies on: a saturated
    // bank makes reads slow; removing writes (dedup) speeds reads.
    PcmDevice dev(smallConfig());
    Tick t = 0;
    for (int i = 0; i < 32; ++i)
        dev.access(OpType::Write, 0, t);  // all to bank 0
    NvmAccessResult r = dev.access(OpType::Read, 4 * kLineSize, 0);
    EXPECT_GT(r.queueDelay, 1000u);
}

TEST(PcmDevice, RowBufferHitIsFast)
{
    PcmConfig cfg = smallConfig();
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    NvmAccessResult first = dev.access(OpType::Read, 0, 0);
    EXPECT_EQ(first.complete - first.start, cfg.readLatency);
    // Same line again: open row.
    NvmAccessResult second = dev.access(OpType::Read, 0, 1000);
    EXPECT_EQ(second.complete - second.start, cfg.rowHitReadLatency);
    EXPECT_EQ(dev.stats().rowHits.value(), 1u);
}

TEST(PcmDevice, RowBufferMissAfterConflict)
{
    PcmConfig cfg = smallConfig();
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    dev.access(OpType::Read, 0, 0);
    // Line 256 maps to bank 0 (4 banks) but a different 64-line row.
    NvmAccessResult other =
        dev.access(OpType::Read, 256 * kLineSize, 1000);
    EXPECT_EQ(other.complete - other.start, cfg.readLatency);
    // Original row was closed by the conflict.
    NvmAccessResult back = dev.access(OpType::Read, 0, 2000);
    EXPECT_EQ(back.complete - back.start, cfg.readLatency);
}

TEST(PcmDevice, WriteOpensRowForSubsequentRead)
{
    PcmConfig cfg = smallConfig();
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    NvmAccessResult w = dev.access(OpType::Write, 0, 0);
    EXPECT_EQ(w.complete - w.start, cfg.writeLatency);
    NvmAccessResult r = dev.access(OpType::Read, 0, 1000);
    EXPECT_EQ(r.complete - r.start, cfg.rowHitReadLatency);
}

// ------------------------------------------------------------ NvmStore

TEST(NvmStore, ReadBackWhatWasWritten)
{
    NvmStore store(1 << 20);
    Pcg32 rng(1);
    CacheLine l;
    rng.fillLine(l);
    store.write(128, l, 0xabcd);
    auto got = store.read(128);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->data, l);
    EXPECT_EQ(got->ecc, 0xabcdu);
}

TEST(NvmStore, UnwrittenIsEmpty)
{
    NvmStore store(1 << 20);
    EXPECT_FALSE(store.read(0).has_value());
    EXPECT_FALSE(store.contains(0));
}

TEST(NvmStore, SubLineAddressesAlias)
{
    NvmStore store(1 << 20);
    CacheLine l;
    l.setWord(0, 7);
    store.write(64, l, 1);
    EXPECT_TRUE(store.contains(64 + 13));
    EXPECT_EQ(store.read(64 + 13)->data, l);
}

TEST(NvmStore, EraseRemoves)
{
    NvmStore store(1 << 20);
    store.write(0, CacheLine{}, 0);
    EXPECT_EQ(store.residentLines(), 1u);
    store.erase(0);
    EXPECT_EQ(store.residentLines(), 0u);
    EXPECT_FALSE(store.contains(0));
}

TEST(NvmStore, OverwriteReplaces)
{
    NvmStore store(1 << 20);
    CacheLine a, b;
    a.setWord(0, 1);
    b.setWord(0, 2);
    store.write(0, a, 10);
    store.write(0, b, 20);
    EXPECT_EQ(store.residentLines(), 1u);
    EXPECT_EQ(store.read(0)->data, b);
    EXPECT_EQ(store.read(0)->ecc, 20u);
}

} // namespace
} // namespace esd
