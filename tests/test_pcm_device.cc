/**
 * @file
 * Tests for the banked PCM timing/energy model and the content store.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/random.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"

namespace esd
{
namespace
{

PcmConfig
smallConfig()
{
    PcmConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 4;
    cfg.writeQueueDepth = 2;
    cfg.rowBufferLines = 0;  // timing tests use raw array latencies
    return cfg;
}

TEST(PcmDevice, IdleReadTakesArrayLatency)
{
    PcmDevice dev(smallConfig());
    NvmAccessResult r = dev.access(OpType::Read, 0, 1000);
    EXPECT_EQ(r.start, 1000u);
    EXPECT_EQ(r.complete, 1075u);
    EXPECT_EQ(r.queueDelay, 0u);
    EXPECT_EQ(r.issuerStall, 0u);
}

TEST(PcmDevice, IdleWriteTakesWriteLatency)
{
    PcmDevice dev(smallConfig());
    NvmAccessResult r = dev.access(OpType::Write, 0, 500);
    EXPECT_EQ(r.complete, 650u);
}

TEST(PcmDevice, SameBankRequestsSerialize)
{
    PcmDevice dev(smallConfig());
    // Lines 0 and 4 both map to bank 0 with 4 banks.
    NvmAccessResult r1 = dev.access(OpType::Write, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Read, 4 * kLineSize, 0);
    EXPECT_EQ(r1.complete, 150u);
    EXPECT_EQ(r2.start, 150u);  // waits for the write
    EXPECT_EQ(r2.queueDelay, 150u);
    EXPECT_EQ(r2.complete, 225u);
}

TEST(PcmDevice, DifferentBanksProceedInParallel)
{
    PcmDevice dev(smallConfig());
    NvmAccessResult r1 = dev.access(OpType::Write, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Read, kLineSize, 0);
    EXPECT_EQ(r1.complete, 150u);
    EXPECT_EQ(r2.complete, 75u);  // bank 1 was idle
}

TEST(PcmDevice, BankMappingIsLineInterleaved)
{
    PcmDevice dev(smallConfig());
    EXPECT_EQ(dev.bankOf(0), 0u);
    EXPECT_EQ(dev.bankOf(kLineSize), 1u);
    EXPECT_EQ(dev.bankOf(4 * kLineSize), 0u);
    // Sub-line offsets map with their line.
    EXPECT_EQ(dev.bankOf(kLineSize + 5), 1u);
}

TEST(PcmDevice, WriteQueueBackpressureStallsIssuer)
{
    PcmDevice dev(smallConfig());  // depth 2
    // Fill the queue with two writes to the same bank (serialized).
    dev.access(OpType::Write, 0, 0);                   // completes 150
    dev.access(OpType::Write, 4 * kLineSize, 0);       // completes 300
    // Third write arrives while both are outstanding: stall until the
    // earliest (150) retires.
    NvmAccessResult r = dev.access(OpType::Write, 8 * kLineSize, 10);
    EXPECT_EQ(r.issuerStall, 140u);
    EXPECT_EQ(dev.stats().writeQueueStalls.value(), 1u);
}

TEST(PcmDevice, NoStallAfterCompletionsDrain)
{
    PcmDevice dev(smallConfig());
    dev.access(OpType::Write, 0, 0);
    dev.access(OpType::Write, kLineSize, 0);
    // Arrives after both completed.
    NvmAccessResult r = dev.access(OpType::Write, 2 * kLineSize, 1000);
    EXPECT_EQ(r.issuerStall, 0u);
}

TEST(PcmDevice, EnergyAccounting)
{
    PcmDevice dev(smallConfig());
    dev.access(OpType::Read, 0, 0);
    dev.access(OpType::Read, kLineSize, 0);
    dev.access(OpType::Write, 2 * kLineSize, 0);
    EXPECT_DOUBLE_EQ(dev.stats().readEnergy, 2 * 1490.0);
    EXPECT_DOUBLE_EQ(dev.stats().writeEnergy, 6750.0);
    EXPECT_DOUBLE_EQ(dev.stats().totalEnergy(), 2 * 1490.0 + 6750.0);
    EXPECT_EQ(dev.stats().reads.value(), 2u);
    EXPECT_EQ(dev.stats().writes.value(), 1u);
}

TEST(PcmDevice, ResetStatsClears)
{
    PcmDevice dev(smallConfig());
    dev.access(OpType::Write, 0, 0);
    dev.resetStats();
    EXPECT_EQ(dev.stats().writes.value(), 0u);
    EXPECT_DOUBLE_EQ(dev.stats().totalEnergy(), 0.0);
}

TEST(PcmDevice, ReadPriorityBypassesQueuedWrites)
{
    PcmConfig cfg = smallConfig();
    cfg.readPriority = true;
    cfg.writeQueueDepth = 64;
    PcmDevice dev(cfg);
    // Pile writes onto bank 0.
    for (int i = 0; i < 16; ++i)
        dev.access(OpType::Write, 0, 0);
    // A read waits for at most one write service, not the backlog.
    NvmAccessResult r = dev.access(OpType::Read, 4 * kLineSize, 10);
    EXPECT_LE(r.queueDelay, cfg.writeLatency);
}

TEST(PcmDevice, ReadPriorityChainsReads)
{
    PcmConfig cfg = smallConfig();
    cfg.readPriority = true;
    PcmDevice dev(cfg);
    NvmAccessResult r1 = dev.access(OpType::Read, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Read, 4 * kLineSize, 0);
    EXPECT_EQ(r1.complete, 75u);
    EXPECT_EQ(r2.start, 75u);  // same bank: reads serialize
}

TEST(PcmDevice, HeavyWriteStreamDelaysReads)
{
    // The read/write interference Section IV-C relies on: a saturated
    // bank makes reads slow; removing writes (dedup) speeds reads.
    PcmDevice dev(smallConfig());
    Tick t = 0;
    for (int i = 0; i < 32; ++i)
        dev.access(OpType::Write, 0, t);  // all to bank 0
    NvmAccessResult r = dev.access(OpType::Read, 4 * kLineSize, 0);
    EXPECT_GT(r.queueDelay, 1000u);
}

TEST(PcmDevice, RowBufferHitIsFast)
{
    PcmConfig cfg = smallConfig();
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    NvmAccessResult first = dev.access(OpType::Read, 0, 0);
    EXPECT_EQ(first.complete - first.start, cfg.readLatency);
    // Same line again: open row.
    NvmAccessResult second = dev.access(OpType::Read, 0, 1000);
    EXPECT_EQ(second.complete - second.start, cfg.rowHitReadLatency);
    EXPECT_EQ(dev.stats().rowHits.value(), 1u);
}

TEST(PcmDevice, RowBufferMissAfterConflict)
{
    PcmConfig cfg = smallConfig();
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    dev.access(OpType::Read, 0, 0);
    // Line 256 maps to bank 0 (4 banks) but a different 64-line row.
    NvmAccessResult other =
        dev.access(OpType::Read, 256 * kLineSize, 1000);
    EXPECT_EQ(other.complete - other.start, cfg.readLatency);
    // Original row was closed by the conflict.
    NvmAccessResult back = dev.access(OpType::Read, 0, 2000);
    EXPECT_EQ(back.complete - back.start, cfg.readLatency);
}

TEST(PcmDevice, WriteOpensRowForSubsequentRead)
{
    PcmConfig cfg = smallConfig();
    cfg.rowBufferLines = 64;
    PcmDevice dev(cfg);
    NvmAccessResult w = dev.access(OpType::Write, 0, 0);
    EXPECT_EQ(w.complete - w.start, cfg.writeLatency);
    NvmAccessResult r = dev.access(OpType::Read, 0, 1000);
    EXPECT_EQ(r.complete - r.start, cfg.rowHitReadLatency);
}

// ------------------------------------------------- multi-channel WPQ

ChannelConfig
channelled(unsigned count, bool coalesce = false, unsigned depth = 0)
{
    ChannelConfig ch;
    ch.count = count;
    ch.wpqCoalescing = coalesce;
    ch.wpqDepth = depth;
    return ch;
}

TEST(PcmDeviceChannels, InterleaveMapsLinesModuloChannels)
{
    PcmDevice dev(smallConfig(), channelled(4));
    EXPECT_EQ(dev.channelCount(), 4u);
    EXPECT_EQ(dev.banksPerChannel(), 4u);
    EXPECT_EQ(dev.totalBanks(), 16u);
    for (std::uint64_t line = 0; line < 32; ++line) {
        EXPECT_EQ(dev.channelOf(line * kLineSize), line % 4) << line;
        // Sub-line offsets stay with their line.
        EXPECT_EQ(dev.channelOf(line * kLineSize + 17), line % 4);
    }
    // Global bank = channel * banksPerChannel + local interleave.
    EXPECT_EQ(dev.bankOf(0), 0u);                   // ch 0, local 0
    EXPECT_EQ(dev.bankOf(kLineSize), 4u);           // ch 1, local 0
    EXPECT_EQ(dev.bankOf(4 * kLineSize), 1u);       // ch 0, local 1
    EXPECT_EQ(dev.bankOf(5 * kLineSize), 5u);       // ch 1, local 1
    EXPECT_EQ(dev.bankOf(16 * kLineSize), 0u);      // wraps
}

TEST(PcmDeviceChannels, AdjacentLinesServiceInParallel)
{
    // On one channel lines 0 and 4 share bank 0 and serialize; with
    // four channels they land on different channels' bank 0.
    PcmDevice dev(smallConfig(), channelled(4));
    NvmAccessResult r1 = dev.access(OpType::Write, 0, 0);
    NvmAccessResult r2 = dev.access(OpType::Write, kLineSize, 0);
    EXPECT_EQ(r1.complete, 150u);
    EXPECT_EQ(r2.complete, 150u);
    EXPECT_EQ(dev.channelStats(0).writes.value(), 1u);
    EXPECT_EQ(dev.channelStats(1).writes.value(), 1u);
}

TEST(PcmDeviceChannels, CoalescingMergesIntoPendingWrite)
{
    PcmDevice dev(smallConfig(), channelled(1, true, 8));
    NvmAccessResult first = dev.access(OpType::Write, 0, 0);
    EXPECT_FALSE(first.coalesced);
    EXPECT_EQ(first.complete, 150u);

    // Re-write while the first is still queued: merged in place.
    NvmAccessResult second = dev.access(OpType::Write, 0, 10);
    EXPECT_TRUE(second.coalesced);
    EXPECT_EQ(second.start, 10u);
    EXPECT_EQ(second.complete, 150u);  // durable with the queued write
    EXPECT_EQ(second.issuerStall, 0u);

    EXPECT_EQ(dev.stats().writes.value(), 1u);
    EXPECT_EQ(dev.stats().writesOffered.value(), 2u);
    EXPECT_EQ(dev.stats().writesCoalesced.value(), 1u);
    // No second array access: energy and wear stay flat.
    EXPECT_DOUBLE_EQ(dev.stats().writeEnergy, 6750.0);
    EXPECT_EQ(dev.wear().stats().totalWrites, 1u);
}

TEST(PcmDeviceChannels, CoalescingMissesAfterDrain)
{
    PcmDevice dev(smallConfig(), channelled(1, true, 8));
    dev.access(OpType::Write, 0, 0);  // completes at 150
    NvmAccessResult later = dev.access(OpType::Write, 0, 200);
    EXPECT_FALSE(later.coalesced);
    EXPECT_EQ(dev.stats().writes.value(), 2u);
}

TEST(PcmDeviceChannels, CoalescingOffIssuesEveryWrite)
{
    PcmDevice dev(smallConfig(), channelled(1, false, 8));
    dev.access(OpType::Write, 0, 0);
    NvmAccessResult second = dev.access(OpType::Write, 0, 10);
    EXPECT_FALSE(second.coalesced);
    EXPECT_EQ(second.complete, 300u);  // serializes behind the first
    EXPECT_EQ(dev.stats().writesCoalesced.value(), 0u);
}

TEST(PcmDeviceChannels, BackpressureIsPerChannel)
{
    // Depth 2 per channel; saturating channel 0 must not stall
    // channel 1.
    PcmDevice dev(smallConfig(), channelled(2, false, 2));
    dev.access(OpType::Write, 0, 0);                 // ch 0
    dev.access(OpType::Write, 8 * kLineSize, 0);     // ch 0, same bank
    NvmAccessResult other = dev.access(OpType::Write, kLineSize, 10);
    EXPECT_EQ(other.issuerStall, 0u);                // ch 1 is empty
    NvmAccessResult full = dev.access(OpType::Write, 16 * kLineSize, 10);
    EXPECT_GT(full.issuerStall, 0u);                 // ch 0 is full
    EXPECT_EQ(dev.channelStats(0).wpqStalls.value(), 1u);
    EXPECT_EQ(dev.channelStats(1).wpqStalls.value(), 0u);
}

TEST(PcmDeviceChannels, WpqDepthOverridesPcmDefault)
{
    PcmConfig cfg = smallConfig();  // pcm depth 2
    PcmDevice dev(cfg, channelled(1, false, 1));
    EXPECT_EQ(dev.wpqDepth(), 1u);
    dev.access(OpType::Write, 0, 0);
    NvmAccessResult r = dev.access(OpType::Write, kLineSize, 0);
    EXPECT_GT(r.issuerStall, 0u);  // depth 1: one outstanding write

    PcmDevice inherit(cfg, channelled(1));
    EXPECT_EQ(inherit.wpqDepth(), cfg.writeQueueDepth);
}

TEST(PcmDeviceChannels, OfferedWritesAreConserved)
{
    PcmDevice dev(smallConfig(), channelled(4, true, 4));
    Pcg32 rng(7);
    Tick now = 0;
    for (int i = 0; i < 2000; ++i) {
        now += rng.below(40);
        Addr addr = static_cast<Addr>(rng.below(64)) * kLineSize;
        dev.access(rng.chance(0.7) ? OpType::Write : OpType::Read, addr,
                   now);
    }
    const NvmStats &s = dev.stats();
    EXPECT_GT(s.writesCoalesced.value(), 0u);  // tight re-writes occur
    EXPECT_EQ(s.writesOffered.value(),
              s.writes.value() + s.writesCoalesced.value());
    std::uint64_t per_channel = 0;
    for (unsigned c = 0; c < 4; ++c)
        per_channel += dev.channelStats(c).writes.value() +
                       dev.channelStats(c).coalescedWrites.value();
    EXPECT_EQ(per_channel, s.writesOffered.value());
}

// ------------------------------------------------------------ NvmStore

TEST(NvmStore, ReadBackWhatWasWritten)
{
    NvmStore store(1 << 20);
    Pcg32 rng(1);
    CacheLine l;
    rng.fillLine(l);
    store.write(128, l, 0xabcd);
    auto got = store.read(128);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->data, l);
    EXPECT_EQ(got->ecc, 0xabcdu);
}

TEST(NvmStore, UnwrittenIsEmpty)
{
    NvmStore store(1 << 20);
    EXPECT_FALSE(store.read(0).has_value());
    EXPECT_FALSE(store.contains(0));
}

TEST(NvmStore, SubLineAddressesAlias)
{
    NvmStore store(1 << 20);
    CacheLine l;
    l.setWord(0, 7);
    store.write(64, l, 1);
    EXPECT_TRUE(store.contains(64 + 13));
    EXPECT_EQ(store.read(64 + 13)->data, l);
}

TEST(NvmStore, EraseRemoves)
{
    NvmStore store(1 << 20);
    store.write(0, CacheLine{}, 0);
    EXPECT_EQ(store.residentLines(), 1u);
    store.erase(0);
    EXPECT_EQ(store.residentLines(), 0u);
    EXPECT_FALSE(store.contains(0));
}

TEST(NvmStore, OverwriteReplaces)
{
    NvmStore store(1 << 20);
    CacheLine a, b;
    a.setWord(0, 1);
    b.setWord(0, 2);
    store.write(0, a, 10);
    store.write(0, b, 20);
    EXPECT_EQ(store.residentLines(), 1u);
    EXPECT_EQ(store.read(0)->data, b);
    EXPECT_EQ(store.read(0)->ecc, 20u);
}

} // namespace
} // namespace esd
