/**
 * @file
 * Tests for the observability primitives in common/: the JSON
 * writer/parser, the stat registry, and the LatencyStat reservoir.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/stat_registry.hh"
#include "common/stats.hh"

namespace esd
{
namespace
{

// ---------------------------------------------------------------- JSON

TEST(JsonWriter, NestedStructure)
{
    std::ostringstream os;
    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.kv("a", 1);
    w.key("b");
    w.beginArray();
    w.value(1.5);
    w.value("x");
    w.nullValue();
    w.endArray();
    w.endObject();
    EXPECT_EQ(os.str(), "{\"a\":1,\"b\":[1.5,\"x\",null]}");
}

TEST(JsonWriter, EscapesControlAndQuotes)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.kv("k", std::string("a\"b\\c\n\t"));
    w.endObject();
    EXPECT_EQ(os.str(), "{\"k\":\"a\\\"b\\\\c\\n\\t\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.kv("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(os.str(), "{\"inf\":null}");
}

TEST(JsonParser, ParsesWriterOutput)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("n", 42);
    w.kv("s", "hi");
    w.kv("f", true);
    w.key("arr");
    w.beginArray();
    w.value(1);
    w.value(2);
    w.endArray();
    w.endObject();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(tryParseJson(os.str(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("n")->number, 42);
    EXPECT_EQ(v.find("s")->str, "hi");
    EXPECT_TRUE(v.find("f")->boolean);
    ASSERT_TRUE(v.find("arr")->isArray());
    EXPECT_EQ(v.find("arr")->array.size(), 2u);
}

TEST(JsonParser, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(tryParseJson("{\"a\": }", v, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(tryParseJson("[1, 2", v));
    EXPECT_FALSE(tryParseJson("{\"a\":1} trailing", v));
    EXPECT_FALSE(tryParseJson("", v));
}

// -------------------------------------------------------- StatRegistry

TEST(StatRegistry, ReadsLiveCounterAndGaugeValues)
{
    Counter c;
    double g = 1.0;
    StatRegistry reg;
    reg.addCounter("scheme.writes", c, "logical writes");
    reg.addGauge("scheme.rate", [&g] { return g; });

    EXPECT_EQ(reg.scalar("scheme.writes"), 0.0);
    c.inc(3);
    g = 0.5;
    EXPECT_EQ(reg.scalar("scheme.writes"), 3.0);
    EXPECT_EQ(reg.scalar("scheme.rate"), 0.5);

    ASSERT_NE(reg.find("scheme.writes"), nullptr);
    EXPECT_EQ(reg.find("scheme.writes")->desc, "logical writes");
    EXPECT_EQ(reg.find("missing"), nullptr);
    EXPECT_TRUE(reg.has("scheme.rate"));
}

TEST(StatRegistry, ScalarNamesExcludeLatencyStats)
{
    Counter c;
    LatencyStat lat;
    StatRegistry reg;
    reg.addCounter("a.count", c);
    reg.addLatency("a.latency", lat);
    reg.addGauge("a.gauge", [] { return 1.0; });

    auto names = reg.scalarNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.count");
    EXPECT_EQ(names[1], "a.gauge");
    EXPECT_EQ(reg.scalarValues().size(), 2u);
}

TEST(StatRegistryDeathTest, DuplicateNamePanics)
{
    Counter c;
    StatRegistry reg;
    reg.addCounter("dup.name", c);
    EXPECT_DEATH(reg.addCounter("dup.name", c),
                 "duplicate stat registration");
}

TEST(StatRegistry, JsonRoundTrip)
{
    Counter c;
    c.inc(7);
    LatencyStat lat;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        lat.sample(v);

    StatRegistry reg;
    reg.addCounter("z.counter", c);
    reg.addGauge("a.gauge", [] { return 2.5; });
    reg.addLatency("m.latency", lat);

    std::ostringstream os;
    JsonWriter w(os);
    reg.writeJson(w);

    JsonValue v;
    std::string err;
    ASSERT_TRUE(tryParseJson(os.str(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());

    // Name-sorted output.
    ASSERT_EQ(v.object.size(), 3u);
    EXPECT_EQ(v.object[0].first, "a.gauge");
    EXPECT_EQ(v.object[1].first, "m.latency");
    EXPECT_EQ(v.object[2].first, "z.counter");

    EXPECT_EQ(v.find("z.counter")->number, 7.0);
    EXPECT_EQ(v.find("a.gauge")->number, 2.5);

    const JsonValue *l = v.find("m.latency");
    ASSERT_TRUE(l->isObject());
    EXPECT_EQ(l->find("count")->number, 4.0);
    EXPECT_EQ(l->find("mean")->number, 25.0);
    EXPECT_EQ(l->find("min")->number, 10.0);
    EXPECT_EQ(l->find("max")->number, 40.0);
    ASSERT_NE(l->find("p50"), nullptr);
    ASSERT_NE(l->find("p99"), nullptr);
}

// --------------------------------------------------- LatencyStat extras

TEST(LatencyStat, MinMaxAreExactAfterManySamples)
{
    LatencyStat s;
    for (int i = 1; i <= 1000; ++i)
        s.sample(i);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 1000.0);
    EXPECT_EQ(s.count(), 1000u);
    EXPECT_DOUBLE_EQ(s.mean(), 500.5);
    s.reset();
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(LatencyStat, ReservoirCapsStorageButKeepsExactSummary)
{
    LatencyStat s(100);
    for (int i = 1; i <= 10000; ++i)
        s.sample(i);
    EXPECT_EQ(s.samples().size(), 100u);
    EXPECT_EQ(s.count(), 10000u);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 10000.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5000.5);

    // The reservoir is a uniform subsample, so its median should be
    // roughly the true median (loose bound — deterministic stream).
    double p50 = s.percentile(50);
    EXPECT_GT(p50, 2000.0);
    EXPECT_LT(p50, 8000.0);
}

TEST(LatencyStat, UncappedKeepsEverySampleWhenOptedIn)
{
    LatencyStat s;
    s.enableRawSamples(0);
    for (int i = 0; i < 5000; ++i)
        s.sample(i);
    EXPECT_EQ(s.samples().size(), 5000u);
}

TEST(LatencyStat, RawSamplesAreOffByDefault)
{
    LatencyStat s;
    EXPECT_FALSE(s.rawSamplesEnabled());
    for (int i = 1; i <= 100; ++i)
        s.sample(i);
    // No raw storage, yet the summary and percentiles stay exact.
    EXPECT_TRUE(s.samples().empty());
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
}

TEST(LatencyStatDeathTest, CapAfterSamplesPanics)
{
    LatencyStat s;
    s.sample(1.0);
    EXPECT_DEATH(s.setReservoirCapacity(10), "assertion failed");
}

} // namespace
} // namespace esd
