/**
 * @file
 * Tests for the metrics module: table rendering and energy
 * aggregation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/energy.hh"
#include "metrics/report.hh"

namespace esd
{
namespace
{

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, ColumnsAlignToWidestCell)
{
    TablePrinter t({"a", "b"});
    t.addRow({"longvalue", "x"});
    std::ostringstream os;
    t.print(os);
    std::istringstream is(os.str());
    std::string header, sep, row;
    std::getline(is, header);
    std::getline(is, sep);
    std::getline(is, row);
    EXPECT_EQ(header.size(), row.size());
}

TEST(TablePrinter, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinter, PctFormatsFractions)
{
    EXPECT_EQ(TablePrinter::pct(0.5), "50.0%");
    EXPECT_EQ(TablePrinter::pct(0.1234, 2), "12.34%");
}

TEST(EnergyBreakdown, TotalSumsComponents)
{
    EnergyBreakdown e;
    e.deviceRead = 1;
    e.deviceWrite = 2;
    e.hash = 3;
    e.crypto = 4;
    e.metadata = 5;
    EXPECT_DOUBLE_EQ(e.total(), 15.0);
}

TEST(EnergyBreakdown, CollectFromStats)
{
    NvmStats nvm;
    nvm.readEnergy = 100;
    nvm.writeEnergy = 200;
    SchemeStats s;
    s.hashEnergy = 10;
    s.cryptoEnergy = 20;
    s.metadataEnergy = 30;
    EnergyBreakdown e = EnergyBreakdown::collect(nvm, s);
    EXPECT_DOUBLE_EQ(e.deviceRead, 100);
    EXPECT_DOUBLE_EQ(e.deviceWrite, 200);
    EXPECT_DOUBLE_EQ(e.hash, 10);
    EXPECT_DOUBLE_EQ(e.crypto, 20);
    EXPECT_DOUBLE_EQ(e.metadata, 30);
    EXPECT_DOUBLE_EQ(e.total(), 360);
}

} // namespace
} // namespace esd
