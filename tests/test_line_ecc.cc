/**
 * @file
 * Tests for the line-level ECC codec and error injection — including
 * the fingerprint-relevant properties ESD relies on.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.hh"
#include "ecc/error_injector.hh"
#include "ecc/line_ecc.hh"

namespace esd
{
namespace
{

CacheLine
randomLine(Pcg32 &rng)
{
    CacheLine l;
    rng.fillLine(l);
    return l;
}

TEST(LineEcc, ZeroLineHasZeroEcc)
{
    EXPECT_EQ(LineEccCodec::encode(CacheLine{}), 0u);
}

TEST(LineEcc, EqualLinesAlwaysHaveEqualEcc)
{
    Pcg32 rng(1);
    for (int i = 0; i < 200; ++i) {
        CacheLine a = randomLine(rng);
        CacheLine b = a;
        EXPECT_EQ(LineEccCodec::encode(a), LineEccCodec::encode(b));
    }
}

TEST(LineEcc, CheckByteIndexing)
{
    Pcg32 rng(2);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    for (std::size_t w = 0; w < kWordsPerLine; ++w) {
        EXPECT_EQ(LineEccCodec::checkByte(ecc, w),
                  Hamming72::encode(l.word(w)));
    }
}

TEST(LineEcc, CleanLineDecodesOk)
{
    Pcg32 rng(3);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    LineDecodeResult r = LineEccCodec::decode(l, ecc);
    EXPECT_EQ(r.status, EccStatus::Ok);
    EXPECT_EQ(r.correctedWords, 0u);
    EXPECT_TRUE(r.line == l);
}

TEST(LineEcc, SingleBitErrorInEachWordCorrected)
{
    Pcg32 rng(4);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    for (unsigned word = 0; word < kWordsPerLine; ++word) {
        CacheLine bad = l;
        // Flip one bit of this word.
        unsigned bit = word * 64 + rng.below(64);
        ErrorInjector::flipDataBit(bad, bit);
        LineDecodeResult r = LineEccCodec::decode(bad, ecc);
        ASSERT_EQ(r.status, EccStatus::CorrectedData) << "word " << word;
        EXPECT_EQ(r.correctedWords, 1u);
        EXPECT_TRUE(r.line == l);
    }
}

TEST(LineEcc, MultipleWordsEachWithSingleErrorAllCorrected)
{
    Pcg32 rng(5);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    CacheLine bad = l;
    // One flip in every word: SEC per word handles all eight.
    for (unsigned word = 0; word < kWordsPerLine; ++word)
        ErrorInjector::flipDataBit(bad, word * 64 + (word * 7 + 3) % 64);
    LineDecodeResult r = LineEccCodec::decode(bad, ecc);
    EXPECT_EQ(r.status, EccStatus::CorrectedData);
    EXPECT_EQ(r.correctedWords, kWordsPerLine);
    EXPECT_TRUE(r.line == l);
}

TEST(LineEcc, DoubleErrorInOneWordIsUncorrectable)
{
    Pcg32 rng(6);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    CacheLine bad = l;
    ErrorInjector::flipDataBit(bad, 3);
    ErrorInjector::flipDataBit(bad, 17);  // both inside word 0
    LineDecodeResult r = LineEccCodec::decode(bad, ecc);
    EXPECT_EQ(r.status, EccStatus::Uncorrectable);
}

TEST(LineEcc, EccBitErrorCorrectedWithoutTouchingData)
{
    Pcg32 rng(7);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    LineEcc bad_ecc = ecc;
    ErrorInjector::flipEccBit(bad_ecc, 13);
    LineDecodeResult r = LineEccCodec::decode(l, bad_ecc);
    EXPECT_EQ(r.status, EccStatus::CorrectedCheck);
    EXPECT_TRUE(r.line == l);
    EXPECT_EQ(r.ecc, ecc);
}

/** Random-flip property: any single flip across the whole 576-bit
 * (line + ECC) codeword is repaired. */
class LineEccFlipTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LineEccFlipTest, AnySingleFlipRepaired)
{
    Pcg32 rng(100 + GetParam());
    ErrorInjector inj(200 + GetParam());
    for (int i = 0; i < 200; ++i) {
        CacheLine l = randomLine(rng);
        LineEcc ecc = LineEccCodec::encode(l);
        CacheLine bad = l;
        LineEcc bad_ecc = ecc;
        inj.flipRandomBit(bad, bad_ecc);
        LineDecodeResult r = LineEccCodec::decode(bad, bad_ecc);
        ASSERT_NE(r.status, EccStatus::Uncorrectable);
        EXPECT_TRUE(r.line == l);
        EXPECT_EQ(r.ecc, ecc);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineEccFlipTest, ::testing::Range(0, 6));

/** Fingerprint property: random distinct lines essentially never
 * collide in the 64-bit ECC space. */
TEST(LineEccFingerprint, RandomLinesRarelyCollide)
{
    Pcg32 rng(8);
    std::unordered_set<LineEcc> seen;
    for (int i = 0; i < 20000; ++i)
        seen.insert(LineEccCodec::encode(randomLine(rng)));
    // Expected collisions at 2e4 draws from 2^64: ~0.
    EXPECT_GE(seen.size(), 19999u);
}

/** Collisions do exist (the code is linear, kernel is large): a line
 * differing by a word-level kernel element has the same ECC — this is
 * why ESD must byte-compare. */
TEST(LineEccFingerprint, ConstructedCollisionExists)
{
    Pcg32 rng(9);
    CacheLine a = randomLine(rng);
    // Find two distinct words with equal check bytes, then swap word 0
    // of the line between them.
    std::uint64_t w1 = rng.next64();
    std::uint64_t w2 = 0;
    bool found = false;
    for (int i = 0; i < 200000 && !found; ++i) {
        w2 = rng.next64();
        found = (w2 != w1) &&
                Hamming72::encode(w1) == Hamming72::encode(w2);
    }
    ASSERT_TRUE(found) << "no per-word collision found";
    CacheLine b = a;
    a.setWord(0, w1);
    b.setWord(0, w2);
    EXPECT_FALSE(a == b);
    EXPECT_EQ(LineEccCodec::encode(a), LineEccCodec::encode(b));
}

TEST(ErrorInjector, FlipBitsInWordFlipsExactlyN)
{
    Pcg32 rng(10);
    CacheLine l = randomLine(rng);
    LineEcc ecc = LineEccCodec::encode(l);
    ErrorInjector inj(11);
    CacheLine bad = l;
    LineEcc bad_ecc = ecc;
    inj.flipBitsInWord(bad, bad_ecc, 2, 2);
    // Two flips in one word: must be detected as uncorrectable.
    LineDecodeResult r = LineEccCodec::decode(bad, bad_ecc);
    EXPECT_EQ(r.status, EccStatus::Uncorrectable);
}

} // namespace
} // namespace esd
