/**
 * @file
 * Tests for the set-associative cache and the L1/L2/L3 hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/set_assoc_cache.hh"
#include "common/random.hh"

namespace esd
{
namespace
{

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    return l;
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c("test", 8 * kLineSize, 2);
    CacheLine out;
    EXPECT_FALSE(c.access(0, false, CacheLine{}, &out));
    c.fill(0, lineWith(7), false);
    ASSERT_TRUE(c.access(0, false, CacheLine{}, &out));
    EXPECT_EQ(out.word(0), 7u);
    EXPECT_EQ(c.stats().hits.value(), 1u);
    EXPECT_EQ(c.stats().misses.value(), 1u);
}

TEST(SetAssocCache, WriteSetsDirtyAndUpdatesData)
{
    SetAssocCache c("test", 8 * kLineSize, 2);
    c.fill(0, lineWith(1), false);
    EXPECT_TRUE(c.access(0, true, lineWith(2), nullptr));
    CacheVictim v = c.invalidate(0);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.data.word(0), 2u);
}

TEST(SetAssocCache, LruEvictionOrder)
{
    // 2-way, 1 set: lines 0, 1 fill; touching 0 makes 1 the LRU.
    SetAssocCache c("test", 2 * kLineSize, 2);
    c.fill(0 * kLineSize, lineWith(10), false);
    c.fill(1 * kLineSize, lineWith(11), false);
    CacheLine out;
    c.access(0, false, CacheLine{}, &out);  // refresh line 0
    CacheVictim v = c.fill(2 * kLineSize, lineWith(12), false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 1 * kLineSize);
}

TEST(SetAssocCache, DirtyFillMarksVictimDirty)
{
    SetAssocCache c("test", 1 * kLineSize, 1);
    c.fill(0, lineWith(1), true);
    CacheVictim v = c.fill(kLineSize, lineWith(2), false);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.data.word(0), 1u);
    EXPECT_EQ(c.stats().dirtyEvictions.value(), 1u);
}

TEST(SetAssocCache, ProbeDoesNotTouchStats)
{
    SetAssocCache c("test", 4 * kLineSize, 2);
    c.fill(0, lineWith(1), false);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(kLineSize));
    EXPECT_EQ(c.stats().hits.value(), 0u);
    EXPECT_EQ(c.stats().misses.value(), 0u);
}

TEST(SetAssocCache, InvalidateMissIsHarmless)
{
    SetAssocCache c("test", 4 * kLineSize, 2);
    CacheVictim v = c.invalidate(0);
    EXPECT_FALSE(v.valid);
}

TEST(SetAssocCache, GeometryDerivedFromSize)
{
    SetAssocCache c("test", 32 * 1024, 8);
    EXPECT_EQ(c.numSets(), 32u * 1024 / kLineSize / 8);
    EXPECT_EQ(c.sizeBytes(), 32u * 1024);
}

// ------------------------------------------------------------ hierarchy

CacheConfig
tinyHierarchy()
{
    CacheConfig cfg;
    cfg.l1Size = 4 * kLineSize;
    cfg.l2Size = 16 * kLineSize;
    cfg.l3Size = 64 * kLineSize;
    cfg.l1Assoc = cfg.l2Assoc = cfg.l3Assoc = 2;
    return cfg;
}

TEST(CacheHierarchy, ColdMissGoesToMemory)
{
    CacheHierarchy h(tinyHierarchy());
    HierarchyResult r = h.access(0, false, CacheLine{}, lineWith(99));
    EXPECT_EQ(r.hitLevel, 4u);
    ASSERT_FALSE(r.memOps.empty());
    EXPECT_EQ(r.memOps[0].type, OpType::Read);
    EXPECT_EQ(r.data.word(0), 99u);
}

TEST(CacheHierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, false, CacheLine{}, lineWith(5));
    HierarchyResult r = h.access(0, false, CacheLine{}, CacheLine{});
    EXPECT_EQ(r.hitLevel, 1u);
    EXPECT_TRUE(r.memOps.empty());
    EXPECT_EQ(r.data.word(0), 5u);
}

TEST(CacheHierarchy, DirtyDataEventuallyEvictsToMemory)
{
    CacheConfig cfg = tinyHierarchy();
    CacheHierarchy h(cfg);
    // Store to many distinct lines: capacity forces dirty L3 victims.
    unsigned mem_writes = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        HierarchyResult r =
            h.access(i * kLineSize, true, lineWith(i), CacheLine{});
        for (const MemOp &op : r.memOps)
            mem_writes += (op.type == OpType::Write);
    }
    EXPECT_GT(mem_writes, 0u);
}

TEST(CacheHierarchy, EvictedDataCarriesStoredContent)
{
    CacheHierarchy h(tinyHierarchy());
    // Write a recognizable value, then flood to force it out.
    h.access(0, true, lineWith(0xdead), CacheLine{});
    bool saw = false;
    for (std::uint64_t i = 1; i < 512 && !saw; ++i) {
        HierarchyResult r =
            h.access(i * kLineSize, true, lineWith(i), CacheLine{});
        for (const MemOp &op : r.memOps) {
            if (op.type == OpType::Write && op.addr == 0) {
                EXPECT_EQ(op.data.word(0), 0xdeadu);
                saw = true;
            }
        }
    }
    EXPECT_TRUE(saw);
}

TEST(CacheHierarchy, LatencyAccumulatesThroughLevels)
{
    CacheConfig cfg = tinyHierarchy();
    CacheHierarchy h(cfg);
    HierarchyResult miss = h.access(0, false, CacheLine{}, CacheLine{});
    EXPECT_EQ(miss.cacheCycles,
              cfg.l1Latency + cfg.l2Latency + cfg.l3Latency);
    HierarchyResult hit = h.access(0, false, CacheLine{}, CacheLine{});
    EXPECT_EQ(hit.cacheCycles, cfg.l1Latency);
}

} // namespace
} // namespace esd
