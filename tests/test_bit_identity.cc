/**
 * @file
 * Bit-identity regression against committed golden run reports.
 *
 * tests/golden/stats_scheme<K>.json are the full stats-JSON documents
 * of a fixed pinned run (mcf, 20000 records, 4000 warmup, seed 1,
 * 5000-write interval sampling) for all six schemes, generated before
 * the flat-map metadata migration. Simulated results are pure model
 * outputs — no host timing leaks into the report — so any hot-path
 * "optimisation" that perturbs a single byte of them is a functional
 * change, and this test names the first divergent byte.
 *
 * Regenerating after an *intentional* model change:
 *   for s in 0 1 2 3 4 5; do
 *     build/tools/esd_sim -scheme=$s -app=mcf -records=20000 \
 *       -warmup=4000 -stats-interval=5000 \
 *       -stats-json=tests/golden/stats_scheme$s.json
 *   done
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/run_report.hh"
#include "core/simulator.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

constexpr std::uint64_t kRecords = 20000;
constexpr std::uint64_t kWarmup = 4000;
constexpr std::uint64_t kInterval = 5000;
constexpr std::uint64_t kSeed = 1;

std::string
goldenPath(int scheme)
{
    return std::string(ESD_SOURCE_DIR) + "/tests/golden/stats_scheme" +
           std::to_string(scheme) + ".json";
}

std::string
loadGolden(int scheme)
{
    std::ifstream in(goldenPath(scheme), std::ios::binary);
    EXPECT_TRUE(in) << "missing golden " << goldenPath(scheme);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The exact pipeline `esd_sim -scheme=K -app=mcf -records=20000
 * -warmup=4000 -stats-interval=5000 -stats-json=...` runs. */
std::string
renderReport(SchemeKind kind)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    Simulator sim(cfg, kind);
    sim.enableIntervalSampling(kInterval);
    SyntheticWorkload trace(findApp("mcf"), kSeed);
    RunResult r = sim.run(trace, kRecords, kWarmup);
    std::ostringstream os;
    writeStatsReport(os, cfg, r, sim.statRegistry(), &sim.sampler());
    return os.str();
}

void
expectIdentical(const std::string &golden, const std::string &fresh,
                const std::string &label)
{
    if (golden == fresh)
        return;
    std::size_t at = 0;
    std::size_t n = std::min(golden.size(), fresh.size());
    while (at < n && golden[at] == fresh[at])
        ++at;
    std::size_t from = at > 60 ? at - 60 : 0;
    FAIL() << label << ": report diverges from golden at byte " << at
           << "\n  golden: ..."
           << golden.substr(from, std::min<std::size_t>(120,
                                                        golden.size() -
                                                            from))
           << "\n  fresh:  ..."
           << fresh.substr(from, std::min<std::size_t>(120,
                                                       fresh.size() -
                                                           from));
}

class BitIdentity : public ::testing::TestWithParam<int>
{
};

TEST_P(BitIdentity, StatsReportMatchesGolden)
{
    int scheme = GetParam();
    SchemeKind kind = allSchemeKindsExtended()[scheme];
    expectIdentical(loadGolden(scheme), renderReport(kind),
                    schemeName(kind));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, BitIdentity,
                         ::testing::Range(0, 6));

/** Profiling must not perturb the unprofiled report schema: a profiled
 * run's simulated results match the same golden except for the added
 * host.profile.* stats — which are gauges on *host* time, so the test
 * only asserts the simulated sections stay unchanged by re-rendering
 * without profiling after a profiled run in the same process. */
TEST(BitIdentityProfiling, ProfiledRunKeepsSimulatedResults)
{
    SimConfig cfg;
    cfg.seed = kSeed;
    Simulator sim(cfg, SchemeKind::Esd);
    sim.enableIntervalSampling(kInterval);
    sim.enableProfiling();
    SyntheticWorkload trace(findApp("mcf"), kSeed);
    RunResult r = sim.run(trace, kRecords, kWarmup);

    // Host-side accounting exists...
    EXPECT_GT(r.hostNs, 0u);
    EXPECT_GT(sim.profiler().phase(Profiler::Lookup).calls, 0u);

    // ...but the simulated summary equals the unprofiled golden run's.
    // (The profiled report's stats section gains host.profile.* gauges
    // whose values are host time; the "config" and "result" sections
    // carry every simulated outcome and must be untouched.)
    std::string golden = loadGolden(3);
    std::ostringstream os;
    writeStatsReport(os, cfg, r, sim.statRegistry(), &sim.sampler());
    std::string fresh = os.str();
    auto section = [](const std::string &doc) {
        std::size_t b = doc.find("\"stats\":");
        EXPECT_NE(b, std::string::npos);
        return doc.substr(0, b);
    };
    EXPECT_EQ(section(golden), section(fresh));
    EXPECT_NE(fresh.find("\"host.profile.lookup_ns\""),
              std::string::npos);
    EXPECT_EQ(golden.find("\"host.profile.lookup_ns\""),
              std::string::npos);
}

} // namespace
} // namespace esd
