/**
 * @file
 * Test wall for the intra-simulation sharded write pipeline
 * (exec/pipeline.hh).
 *
 * The pipeline's one promise is worth a wall: the merged stats report
 * is byte-for-byte identical at any worker count. Every test here
 * compares whole serialized reports (with firstJsonDivergence as the
 * failure diagnostic), because "the counters happen to match" is a
 * much weaker statement than "not one byte moved". The jittered
 * variants re-run the same comparisons with randomized per-worker
 * barrier delays (ESD_TEST_JITTER=1) so a scheduling-dependent merge
 * cannot hide behind a lucky interleaving — under TSan this doubles
 * as a race-flushing stress.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "exec/pipeline.hh"
#include "exec/sweep_runner.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

/** Eight-channel config with a barrier every 512 records: enough
 * epochs (tens) that cross-shard effects get real exercise. */
SimConfig
pipelineConfig(unsigned channels)
{
    SimConfig c;
    c.channels.count = channels;
    c.channels.wpqCoalescing = channels > 1;
    c.pipeline.epochRecords = 512;
    return c;
}

/** Run one pipeline and return the full serialized report. */
std::string
runReport(SchemeKind kind, const SimConfig &cfg, unsigned workers,
          std::uint64_t records = 12000, std::uint64_t warmup = 2000,
          const char *app = "gcc")
{
    SyntheticWorkload trace(findApp(app), cfg.seed);
    exec::ShardedPipeline pipe(cfg, kind, workers);
    pipe.run(trace, records, warmup);
    std::ostringstream os;
    pipe.writeReport(os);
    return os.str();
}

class PipelineIdentityTest : public ::testing::TestWithParam<SchemeKind>
{
};

/** The headline guarantee: workers in {1, 2, 4, 8} over eight shards
 * produce the identical report, for every scheme. */
TEST_P(PipelineIdentityTest, ReportBytesIdenticalAcrossWorkerCounts)
{
    SimConfig c = pipelineConfig(8);
    const std::string base = runReport(GetParam(), c, 1);
    for (unsigned w : {2u, 4u, 8u}) {
        const std::string other = runReport(GetParam(), c, w);
        ASSERT_EQ(base, other)
            << schemeName(GetParam()) << " workers=" << w
            << " diverges at "
            << exec::firstJsonDivergence(base, other);
    }
}

/** The worker count is an execution knob: it must never leak into the
 * serialized report (that would break identity by construction). */
TEST_P(PipelineIdentityTest, ReportNeverSerializesWorkerCount)
{
    SimConfig c = pipelineConfig(4);
    const std::string rep = runReport(GetParam(), c, 4);
    EXPECT_EQ(rep.find("\"workers\""), std::string::npos);
    EXPECT_NE(rep.find("\"shards\""), std::string::npos);
    EXPECT_NE(rep.find("\"pipeline\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PipelineIdentityTest,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::DedupSha1,
                      SchemeKind::DeWrite, SchemeKind::Esd,
                      SchemeKind::EsdFull, SchemeKind::EsdPlus),
    [](const auto &info) {
        std::string n = schemeName(info.param);
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

/** Randomized barrier arrival delays must be invisible in the bytes:
 * determinism is structural, not a race won by fast hardware. */
TEST(Pipeline, JitteredBarriersDoNotChangeBytes)
{
    SimConfig c = pipelineConfig(4);
    const std::string base = runReport(SchemeKind::Esd, c, 1);
    ::setenv("ESD_TEST_JITTER", "1", 1);
    const std::string jittered = runReport(SchemeKind::Esd, c, 4);
    ::unsetenv("ESD_TEST_JITTER");
    EXPECT_EQ(base, jittered)
        << exec::firstJsonDivergence(base, jittered);
}

/** One channel degenerates to one shard and one worker — the pipeline
 * must clamp rather than spin idle threads. */
TEST(Pipeline, SingleChannelClampsToOneWorker)
{
    SimConfig c = pipelineConfig(1);
    exec::ShardedPipeline pipe(c, SchemeKind::Esd, 8);
    EXPECT_EQ(pipe.shardCount(), 1u);
    EXPECT_EQ(pipe.workers(), 1u);

    SyntheticWorkload trace(findApp("x264"), c.seed);
    const RunResult &r = pipe.run(trace, 4000, 500);
    EXPECT_EQ(r.records, 3500u);
    EXPECT_GE(pipe.epochsRun(), 1u);
}

/** The merged result must be exactly the shard-order fold of the
 * per-shard results: sums for counters, max for simulated time, and
 * exact histogram merges for latency. */
TEST(Pipeline, MergedResultIsShardOrderFold)
{
    SimConfig c = pipelineConfig(4);
    SyntheticWorkload trace(findApp("mcf"), c.seed);
    exec::ShardedPipeline pipe(c, SchemeKind::EsdPlus, 4);
    const RunResult &m = pipe.run(trace, 10000, 1000);
    EXPECT_EQ(m.records, 9000u);

    std::uint64_t records = 0, writes = 0, reads = 0, hits = 0;
    std::uint64_t nvm_w = 0, nvm_r = 0, wlat = 0, rlat = 0;
    std::uint64_t meta = 0, wear_writes = 0;
    double max_rt = 0;
    for (unsigned s = 0; s < pipe.shardCount(); ++s) {
        const RunResult &r = pipe.shardResult(s);
        records += r.records;
        writes += r.logicalWrites;
        reads += r.logicalReads;
        hits += r.dedupHits;
        nvm_w += r.nvmWritesTotal;
        nvm_r += r.nvmReadsTotal;
        wlat += r.writeLatency.count();
        rlat += r.readLatency.count();
        meta += r.metadataNvmBytes;
        wear_writes += r.wear.totalWrites;
        max_rt = std::max(max_rt, r.runtimeNs);
    }
    EXPECT_EQ(m.records, records);
    EXPECT_EQ(m.logicalWrites, writes);
    EXPECT_EQ(m.logicalReads, reads);
    EXPECT_EQ(m.dedupHits, hits);
    EXPECT_EQ(m.nvmWritesTotal, nvm_w);
    EXPECT_EQ(m.nvmReadsTotal, nvm_r);
    EXPECT_EQ(m.writeLatency.count(), wlat);
    EXPECT_EQ(m.readLatency.count(), rlat);
    EXPECT_EQ(m.metadataNvmBytes, meta);
    EXPECT_EQ(m.wear.totalWrites, wear_writes);
    EXPECT_DOUBLE_EQ(m.runtimeNs, max_rt);
    EXPECT_EQ(m.nvmDataWrites + m.dedupHits, m.logicalWrites);
}

/** Barrier-sampled interval rows: identical across worker counts,
 * cumulative counters monotone, epochs strictly increasing. */
TEST(Pipeline, IntervalRowsIdenticalAndMonotone)
{
    SimConfig c = pipelineConfig(4);
    c.pipeline.sampleEpochs = 2;

    auto runRows = [&c](unsigned workers) {
        SyntheticWorkload trace(findApp("gcc"), c.seed);
        exec::ShardedPipeline pipe(c, SchemeKind::Esd, workers);
        pipe.run(trace, 12000, 2000);
        return pipe.intervals();
    };
    const auto rows1 = runRows(1);
    const auto rows4 = runRows(4);

    ASSERT_FALSE(rows1.empty());
    ASSERT_EQ(rows1.size(), rows4.size());
    for (std::size_t i = 0; i < rows1.size(); ++i) {
        EXPECT_EQ(rows1[i].epoch, rows4[i].epoch);
        EXPECT_EQ(rows1[i].logicalWrites, rows4[i].logicalWrites);
        EXPECT_EQ(rows1[i].dedupHits, rows4[i].dedupHits);
        EXPECT_EQ(rows1[i].nvmWritesTotal, rows4[i].nvmWritesTotal);
        EXPECT_EQ(rows1[i].nvmReadsTotal, rows4[i].nvmReadsTotal);
        if (i > 0) {
            EXPECT_GT(rows1[i].epoch, rows1[i - 1].epoch);
            EXPECT_GE(rows1[i].logicalWrites, rows1[i - 1].logicalWrites);
            EXPECT_GE(rows1[i].nvmWritesTotal,
                      rows1[i - 1].nvmWritesTotal);
        }
    }
}

/** [ras] composition: the cross-shard UE sum latches dedup suspension
 * on *every* shard at the same barrier whatever the worker count. */
TEST(Pipeline, GlobalSuspensionLatchesDeterministically)
{
    SimConfig c = pipelineConfig(4);
    c.ras.enabled = true;
    c.ras.readBer = 1e-3;  // double-bit UEs within a few hundred reads
    c.ras.dedupSuspendUes = 3;

    auto runOnce = [&c](unsigned workers, std::string &rep,
                        std::uint64_t &epoch, bool &latched) {
        SyntheticWorkload trace(findApp("dedup"), c.seed);
        exec::ShardedPipeline pipe(c, SchemeKind::Esd, workers);
        pipe.run(trace, 12000, 2000);
        std::ostringstream os;
        pipe.writeReport(os);
        rep = os.str();
        latched = pipe.dedupSuspendedGlobally();
        epoch = pipe.suspendEpoch();
        if (latched) {
            for (unsigned s = 0; s < pipe.shardCount(); ++s) {
                EXPECT_TRUE(pipe.shard(s).scheme().ras().dedupSuspended())
                    << "shard " << s << " missed the global latch";
            }
        }
    };

    std::string rep1, rep4;
    std::uint64_t epoch1 = 0, epoch4 = 0;
    bool latched1 = false, latched4 = false;
    runOnce(1, rep1, epoch1, latched1);
    runOnce(4, rep4, epoch4, latched4);

    ASSERT_TRUE(latched1) << "BER too low to trip the latch";
    EXPECT_EQ(latched1, latched4);
    EXPECT_EQ(epoch1, epoch4);
    EXPECT_EQ(rep1, rep4) << exec::firstJsonDivergence(rep1, rep4);
}

/** [persistence] composition: a globally-indexed injected crash lands
 * on the same shard at the same local write whatever the worker
 * count, and recovery off the crash image converges. */
TEST(Pipeline, CrashInjectionIdenticalAcrossWorkerCounts)
{
    SimConfig c = pipelineConfig(4);
    c.persist.enabled = true;
    c.persist.domain = PersistDomain::Adr;
    c.persist.crashAtWrite = 600;

    auto runOnce = [&c](unsigned workers, std::string &rep,
                        int &shard) {
        SyntheticWorkload trace(findApp("gcc"), c.seed);
        exec::ShardedPipeline pipe(c, SchemeKind::Esd, workers);
        pipe.run(trace, 8000, 1000);
        EXPECT_EQ(pipe.checkInjectedCrash(), "");
        shard = pipe.crashedShard();
        std::ostringstream os;
        pipe.writeReport(os);
        rep = os.str();
    };

    std::string rep1, rep4;
    int shard1 = -1, shard4 = -1;
    runOnce(1, rep1, shard1);
    runOnce(4, rep4, shard4);

    ASSERT_GE(shard1, 0) << "injected crash never fired";
    EXPECT_EQ(shard1, shard4);
    EXPECT_EQ(rep1, rep4) << exec::firstJsonDivergence(rep1, rep4);
}

} // namespace
} // namespace esd
