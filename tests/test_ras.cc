/**
 * @file
 * The RAS subsystem end to end: online fault injection, demand and
 * patrol scrubbing, write-verify retry/retirement, UE policy (poison,
 * blast radius, dedup suspension), and the disabled-is-inert contract.
 *
 * All campaigns run on fixed seeds: the fault process is deterministic
 * for a given (seed, access sequence), so every assertion here is
 * exact, not statistical.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/logging.hh"
#include "common/random.hh"
#include "dedup/scheme_factory.hh"
#include "ecc/line_ecc.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"

namespace esd
{
namespace
{

SimConfig
cfg()
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    c.pcm.rowBufferLines = 0;
    return c;
}

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    l.setWord(5, ~v);
    return l;
}

/** Deterministic write/read mix against a shadow copy of every logical
 * line. Returns the total number of operations issued. */
struct SweepResult
{
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
};

SweepResult
runShadowSweep(DedupScheme &scheme, std::uint64_t rng_seed, int ops)
{
    std::unordered_map<Addr, CacheLine> shadow;
    Pcg32 rng(rng_seed);
    SweepResult res;
    Tick t = 0;
    for (int i = 0; i < ops; ++i) {
        Addr addr = static_cast<Addr>(rng.below(64)) * kLineSize;
        if (shadow.empty() || rng.below(100) < 60) {
            // Half the writes draw from a small duplicate pool (dedup
            // hits), half carry fresh content (real device writes that
            // keep the patrol-scrub budget ticking for every scheme).
            CacheLine d = rng.below(2)
                              ? lineWith(0x1000 + rng.below(8))
                              : lineWith(0x100000 + i);
            scheme.write(addr, d, t);
            shadow[addr] = d;
            ++res.writes;
        } else {
            CacheLine out;
            AccessResult r = scheme.read(addr, out, t);
            ++res.reads;
            switch (r.integrity) {
            case ReadIntegrity::Ok:
            case ReadIntegrity::Corrected:
                // The core RAS guarantee: data handed back as intact
                // IS the data last written — faults never leak a wrong
                // line through a dedup hit.
                if (shadow.count(addr))
                    EXPECT_EQ(out, shadow[addr]) << "op " << i;
                else
                    EXPECT_TRUE(out.isZero()) << "op " << i;
                break;
            case ReadIntegrity::Poisoned:
                // Retired lines return a defined outcome, not junk.
                EXPECT_TRUE(out.isZero()) << "op " << i;
                break;
            case ReadIntegrity::Uncorrectable:
                // Detected and counted (sdcEvents); data unusable.
                break;
            }
        }
        t += 1000;
    }
    return res;
}

class RasSweepTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(RasSweepTest, FaultCampaignKeepsDataIntegrity)
{
    SimConfig c = cfg();
    c.seed = 7;
    c.ras.enabled = true;
    c.ras.readBer = 1e-4;
    c.ras.writeBer = 2e-5;
    c.ras.demandScrub = true;
    c.ras.patrolIntervalWrites = 64;
    c.ras.patrolLinesPerSweep = 4;
    c.ras.writeVerifyRetries = 1;
    c.ras.spareRegionLines = 64;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(GetParam(), c, dev, store);

    runShadowSweep(*scheme, 99, 3000);

    const SchemeStats &ss = scheme->stats();
    const RasStats &rs = scheme->ras().stats();
    const FaultModelStats &fs = scheme->ras().faults().stats();

    std::uint64_t injected =
        fs.bitFlipsRead.value() + fs.bitFlipsWrite.value();
    EXPECT_GT(injected, 0u);
    // Every undetected corruption traces back to at least one injected
    // fault pair, so SDCs are strictly fewer than injected faults.
    EXPECT_LT(ss.sdcEvents.value(), injected);
    // The scrubbers saw work.
    EXPECT_GT(rs.patrolSweeps.value(), 0u);
    EXPECT_GT(rs.writeVerifyReads.value(), 0u);
    EXPECT_GT(ss.eccCorrectedReads.value() + rs.patrolCorrected.value(),
              0u);
    // Demand scrubbing mirrors corrected demand reads.
    if (c.ras.demandScrub) {
        EXPECT_EQ(rs.demandScrubWrites.value(),
                  ss.eccCorrectedReads.value());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RasSweepTest,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::DedupSha1,
                      SchemeKind::DeWrite, SchemeKind::Esd,
                      SchemeKind::EsdFull, SchemeKind::EsdPlus),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        std::string n = schemeName(info.param);
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(Ras, DisabledIsInert)
{
    SimConfig c = cfg();  // ras.enabled defaults to false
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Esd, c, dev, store);

    runShadowSweep(*scheme, 5, 500);

    EXPECT_FALSE(scheme->ras().enabled());
    const RasStats &rs = scheme->ras().stats();
    const FaultModelStats &fs = scheme->ras().faults().stats();
    EXPECT_EQ(fs.bitFlipsRead.value() + fs.bitFlipsWrite.value(), 0u);
    EXPECT_EQ(rs.demandScrubWrites.value(), 0u);
    EXPECT_EQ(rs.patrolSweeps.value(), 0u);
    EXPECT_EQ(rs.writeVerifyReads.value(), 0u);
    EXPECT_EQ(rs.ueEvents.value(), 0u);
    EXPECT_EQ(scheme->ras().retiredLines(), 0u);
    EXPECT_EQ(scheme->ras().resolve(0x40), 0x40u);
    EXPECT_EQ(scheme->stats().sdcEvents.value(), 0u);
    EXPECT_EQ(scheme->stats().poisonedReads.value(), 0u);
}

TEST(Ras, FaultCampaignIsDeterministic)
{
    auto campaign = [] {
        SimConfig c = cfg();
        c.seed = 11;
        c.ras.enabled = true;
        c.ras.readBer = 1e-4;
        c.ras.writeBer = 2e-5;
        c.ras.patrolIntervalWrites = 64;
        c.ras.writeVerifyRetries = 1;
        PcmDevice dev(c.pcm);
        NvmStore store(c.pcm.capacityBytes);
        auto scheme = makeScheme(SchemeKind::Esd, c, dev, store);
        runShadowSweep(*scheme, 42, 2000);
        const FaultModelStats &fs = scheme->ras().faults().stats();
        const RasStats &rs = scheme->ras().stats();
        const SchemeStats &ss = scheme->stats();
        return std::vector<std::uint64_t>{
            fs.bitFlipsRead.value(),     fs.bitFlipsWrite.value(),
            rs.demandScrubWrites.value(), rs.patrolCorrected.value(),
            rs.ueEvents.value(),          rs.linesRetired.value(),
            ss.sdcEvents.value(),         ss.dedupHits.value(),
            ss.nvmDataWrites.value(),
        };
    };
    EXPECT_EQ(campaign(), campaign());
}

TEST(Ras, PatrolScrubberRepairsResidentLines)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.patrolIntervalWrites = 4;
    c.ras.patrolLinesPerSweep = 4;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Baseline, c, dev, store);

    // 16 distinct resident lines, then a single-bit fault in each.
    Tick t = 0;
    for (Addr a = 0; a < 16 * kLineSize; a += kLineSize) {
        scheme->write(a, lineWith(a + 1), t);
        t += 1000;
    }
    Pcg32 rng(3);
    for (Addr a = 0; a < 16 * kLineSize; a += kLineSize)
        ASSERT_TRUE(store.corruptBit(a, rng.below(576)));

    // Background write traffic drives the patrol until every corrupted
    // line has been swept and rewritten clean.
    Addr fresh = 1 << 20;
    int guard = 0;
    while (scheme->ras().stats().patrolCorrected.value() < 16) {
        scheme->write(fresh, lineWith(fresh), t);
        fresh += kLineSize;
        t += 1000;
        ASSERT_LT(++guard, 4000) << "patrol never converged";
    }
    EXPECT_EQ(scheme->ras().stats().patrolCorrected.value(), 16u);
    EXPECT_GT(scheme->ras().stats().patrolSweeps.value(), 0u);
    EXPECT_EQ(scheme->ras().stats().patrolUncorrectable.value(), 0u);

    // The media was actually repaired: demand reads now come back
    // clean (Ok, not Corrected) with the original data.
    for (Addr a = 0; a < 16 * kLineSize; a += kLineSize) {
        CacheLine out;
        AccessResult r = scheme->read(a, out, t);
        t += 1000;
        EXPECT_EQ(r.integrity, ReadIntegrity::Ok) << "addr " << a;
        EXPECT_EQ(out, lineWith(a + 1));
    }
    EXPECT_EQ(scheme->stats().eccCorrectedReads.value(), 0u);
}

TEST(Ras, WriteVerifyRetryExhaustionRetiresToSpare)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.writeVerifyRetries = 2;
    c.ras.writeVerifyBackoffNs = 100;
    c.ras.spareRegionLines = 16;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Baseline, c, dev, store);
    FaultModel &fm = scheme->ras().faults();

    // Two cells of medium 0 stuck at the complement of the line's ECC
    // check bits: a persistent double error in word 0's check byte
    // that every rewrite re-asserts. (The ECC word is stored in the
    // clear, so the error is deterministic; payload cells would be
    // XORed with an unknown counter-mode pad.)
    CacheLine data = lineWith(0xabcdef);
    LineEcc ecc = LineEccCodec::encode(data);
    fm.plantStuckBit(0, 512 + 0, ((ecc >> 0) & 1) == 0);
    fm.plantStuckBit(0, 512 + 1, ((ecc >> 1) & 1) == 0);
    EXPECT_EQ(fm.stuckBits(0), 2u);

    scheme->write(0, data, 0);

    const RasStats &rs = scheme->ras().stats();
    // Initial verify + one per retry, all failing on the stuck cells.
    EXPECT_EQ(rs.writeVerifyReads.value(), 3u);
    EXPECT_EQ(rs.writeVerifyRetries.value(), 2u);
    EXPECT_EQ(rs.writeVerifyRetirements.value(), 1u);
    EXPECT_EQ(rs.linesRetired.value(), 1u);
    EXPECT_EQ(scheme->ras().retiredLines(), 1u);
    // A verify-retirement saves the write: no UE, no data loss.
    EXPECT_EQ(rs.ueEvents.value(), 0u);
    EXPECT_EQ(rs.spareExhausted.value(), 0u);

    // The medium moved to the first spare slot; the physical address
    // the scheme uses did not.
    Addr spare_base =
        c.pcm.capacityBytes - c.ras.spareRegionLines * kLineSize;
    EXPECT_EQ(scheme->ras().resolve(0), spare_base);
    EXPECT_EQ(fm.stuckBits(spare_base), 0u);

    CacheLine out;
    AccessResult r = scheme->read(0, out, 100000);
    EXPECT_EQ(r.integrity, ReadIntegrity::Ok);
    EXPECT_EQ(out, data);

    // Rewrites land on the healthy spare: verify passes first try.
    CacheLine data2 = lineWith(0x5555);
    scheme->write(0, data2, 200000);
    EXPECT_EQ(rs.writeVerifyReads.value(), 4u);
    EXPECT_EQ(rs.writeVerifyRetirements.value(), 1u);
    scheme->read(0, out, 300000);
    EXPECT_EQ(out, data2);
}

TEST(Ras, SpareExhaustionLosesTheWrite)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.writeVerifyRetries = 1;
    c.ras.spareRegionLines = 1;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Baseline, c, dev, store);
    FaultModel &fm = scheme->ras().faults();
    Addr spare = c.pcm.capacityBytes - kLineSize;

    // First write: medium 0 is bad, retire to the only spare slot.
    CacheLine d1 = lineWith(1);
    LineEcc e1 = LineEccCodec::encode(d1);
    fm.plantStuckBit(0, 512 + 0, ((e1 >> 0) & 1) == 0);
    fm.plantStuckBit(0, 512 + 1, ((e1 >> 1) & 1) == 0);
    scheme->write(0, d1, 0);
    EXPECT_EQ(scheme->ras().resolve(0), spare);
    EXPECT_EQ(scheme->ras().stats().ueEvents.value(), 0u);

    // Second write: the spare is bad too and no spare remains.
    CacheLine d2 = lineWith(2);
    LineEcc e2 = LineEccCodec::encode(d2);
    fm.plantStuckBit(spare, 512 + 0, ((e2 >> 0) & 1) == 0);
    fm.plantStuckBit(spare, 512 + 1, ((e2 >> 1) & 1) == 0);
    scheme->write(0, d2, 100000);

    const RasStats &rs = scheme->ras().stats();
    EXPECT_EQ(rs.writeVerifyRetirements.value(), 2u);
    EXPECT_EQ(rs.spareExhausted.value(), 1u);
    EXPECT_EQ(rs.linesRetired.value(), 1u);
    EXPECT_EQ(rs.ueEvents.value(), 1u);

    // The line is poisoned: reads return the defined zero line.
    CacheLine out = lineWith(0xdead);
    AccessResult r = scheme->read(0, out, 200000);
    EXPECT_EQ(r.integrity, ReadIntegrity::Poisoned);
    EXPECT_TRUE(out.isZero());
    EXPECT_EQ(scheme->stats().poisonedReads.value(), 1u);
    EXPECT_EQ(scheme->stats().sdcEvents.value(), 0u);
}

TEST(Ras, UncorrectableReadRetiresPoisonsAndRevives)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.spareRegionLines = 16;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Baseline, c, dev, store);

    CacheLine data = lineWith(0x1234);
    scheme->write(0, data, 0);
    // Double fault in payload word 0: uncorrectable on the next read.
    ASSERT_TRUE(store.corruptBit(0, 3));
    ASSERT_TRUE(store.corruptBit(0, 17));

    CacheLine out;
    AccessResult r = scheme->read(0, out, 100000);
    EXPECT_EQ(r.integrity, ReadIntegrity::Uncorrectable);
    EXPECT_EQ(scheme->stats().sdcEvents.value(), 1u);
    const RasStats &rs = scheme->ras().stats();
    EXPECT_EQ(rs.ueEvents.value(), 1u);
    EXPECT_EQ(rs.linesRetired.value(), 1u);
    // Baseline has no dedup: the blast radius is exactly one line.
    EXPECT_EQ(rs.blastRadiusRefs.value(), 1u);
    EXPECT_NE(scheme->ras().resolve(0), 0u);

    // Poisoned until rewritten.
    r = scheme->read(0, out, 200000);
    EXPECT_EQ(r.integrity, ReadIntegrity::Poisoned);
    EXPECT_TRUE(out.isZero());

    CacheLine data2 = lineWith(0x9999);
    scheme->write(0, data2, 300000);
    r = scheme->read(0, out, 400000);
    EXPECT_EQ(r.integrity, ReadIntegrity::Ok);
    EXPECT_EQ(out, data2);
    EXPECT_EQ(scheme->stats().sdcEvents.value(), 1u);
}

TEST(Ras, BlastRadiusIsRefcountWeighted)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.spareRegionLines = 16;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Esd, c, dev, store);

    // Five logical lines deduplicated onto one physical line.
    CacheLine data = lineWith(0x777);
    Tick t = 0;
    for (Addr a = 0; a < 5 * kLineSize; a += kLineSize) {
        scheme->write(a, data, t);
        t += 1000;
    }
    EXPECT_EQ(scheme->stats().dedupHits.value(), 4u);
    ASSERT_EQ(store.residentLines(), 1u);
    Addr phys = store.residentAddrs()[0];

    // Kill the shared line and read one sharer.
    ASSERT_TRUE(store.corruptBit(phys, 3));
    ASSERT_TRUE(store.corruptBit(phys, 17));
    CacheLine out;
    AccessResult r = scheme->read(0, out, t);
    t += 1000;
    EXPECT_EQ(r.integrity, ReadIntegrity::Uncorrectable);

    const RasStats &rs = scheme->ras().stats();
    EXPECT_EQ(rs.ueEvents.value(), 1u);
    // One corrupt unique line lost all five deduplicated sharers.
    EXPECT_EQ(rs.blastRadiusRefs.value(), 5u);
    EXPECT_EQ(scheme->stats().sdcEvents.value(), 1u);

    // Every other sharer sees the poison, not stale or wrong data.
    for (Addr a = kLineSize; a < 5 * kLineSize; a += kLineSize) {
        r = scheme->read(a, out, t);
        t += 1000;
        EXPECT_EQ(r.integrity, ReadIntegrity::Poisoned) << "addr " << a;
        EXPECT_TRUE(out.isZero());
    }
    EXPECT_EQ(scheme->stats().poisonedReads.value(), 4u);

    // The stale fingerprint was invalidated: the same content written
    // again becomes a fresh unique line (no hit on the dead phys) and
    // dedup works against the new copy.
    scheme->write(5 * kLineSize, data, t);
    t += 1000;
    EXPECT_EQ(scheme->stats().dedupHits.value(), 4u);
    scheme->write(6 * kLineSize, data, t);
    t += 1000;
    EXPECT_EQ(scheme->stats().dedupHits.value(), 5u);
    r = scheme->read(6 * kLineSize, out, t);
    EXPECT_EQ(r.integrity, ReadIntegrity::Ok);
    EXPECT_EQ(out, data);
}

TEST(Ras, CorruptCandidateNeverProducesWrongDedup)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.spareRegionLines = 16;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Esd, c, dev, store);

    CacheLine data = lineWith(0x42);
    scheme->write(0, data, 0);
    ASSERT_EQ(store.residentLines(), 1u);
    Addr phys = store.residentAddrs()[0];

    // Single-bit fault: the compare corrects (and scrubs) before
    // matching, so dedup still succeeds.
    ASSERT_TRUE(store.corruptBit(phys, 9));
    scheme->write(kLineSize, data, 1000);
    EXPECT_EQ(scheme->stats().dedupHits.value(), 1u);
    EXPECT_EQ(scheme->stats().eccCorrectedReads.value(), 1u);
    EXPECT_EQ(scheme->ras().stats().demandScrubWrites.value(), 1u);

    // Double fault: the compare detects the UE, never matches, and the
    // write proceeds as a new unique line. A compare-path UE is a
    // detected failure, not an SDC.
    ASSERT_TRUE(store.corruptBit(phys, 3));
    ASSERT_TRUE(store.corruptBit(phys, 17));
    scheme->write(2 * kLineSize, data, 2000);
    EXPECT_EQ(scheme->stats().dedupHits.value(), 1u);
    EXPECT_EQ(scheme->ras().stats().ueEvents.value(), 1u);
    EXPECT_EQ(scheme->stats().sdcEvents.value(), 0u);

    CacheLine out;
    AccessResult r = scheme->read(2 * kLineSize, out, 3000);
    EXPECT_EQ(r.integrity, ReadIntegrity::Ok);
    EXPECT_EQ(out, data);
}

TEST(Ras, DedupSuspensionLatchesPastUeThreshold)
{
    SimConfig c = cfg();
    c.ras.enabled = true;
    c.ras.spareRegionLines = 16;
    c.ras.dedupSuspendUes = 1;
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(SchemeKind::Esd, c, dev, store);

    CacheLine data = lineWith(0xaa);
    scheme->write(0, data, 0);
    scheme->write(kLineSize, data, 1000);
    EXPECT_FALSE(scheme->ras().dedupSuspended());

    ASSERT_EQ(store.residentLines(), 1u);
    Addr phys = store.residentAddrs()[0];
    ASSERT_TRUE(store.corruptBit(phys, 3));
    ASSERT_TRUE(store.corruptBit(phys, 17));
    CacheLine out;
    scheme->read(0, out, 2000);
    EXPECT_TRUE(scheme->ras().dedupSuspended());

    // Suspended: identical content stops deduplicating.
    scheme->write(2 * kLineSize, data, 3000);
    scheme->write(3 * kLineSize, data, 4000);
    EXPECT_EQ(scheme->stats().dedupHits.value(), 1u);
    EXPECT_EQ(scheme->stats().dedupSuspendedWrites.value(), 2u);
    EXPECT_EQ(store.residentLines(), 2u);

    // Suspension is system state: it survives a stats reset.
    scheme->resetStats();
    EXPECT_TRUE(scheme->ras().dedupSuspended());
    EXPECT_EQ(scheme->stats().dedupSuspendedWrites.value(), 0u);
    scheme->write(4 * kLineSize, data, 5000);
    EXPECT_EQ(scheme->stats().dedupSuspendedWrites.value(), 1u);
    EXPECT_EQ(scheme->stats().dedupHits.value(), 0u);
}

} // namespace
} // namespace esd
