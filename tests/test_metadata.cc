/**
 * @file
 * Tests for the deduplication metadata structures: AMT, EFIT (LRCU),
 * the full-dedup fingerprint table, the line store, and the DeWrite
 * predictor.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "dedup/amt.hh"
#include "dedup/efit.hh"
#include "dedup/fp_table.hh"
#include "dedup/line_store.hh"
#include "dedup/predictor.hh"
#include "nvm/nvm_store.hh"

namespace esd
{
namespace
{

// ----------------------------------------------------------- PackedPhys

TEST(PackedPhys, RoundTrip)
{
    for (Addr a : {Addr{0}, Addr{64}, Addr{1} << 20, Addr{255} * 64,
                   Addr{256} * 64, (Addr{1} << 38) + 640}) {
        PackedPhys p = PackedPhys::fromAddr(a);
        EXPECT_EQ(p.toAddr(), lineAlign(a));
    }
}

TEST(PackedPhys, FortyBitSplit)
{
    // Line index 0x1234567_89 -> base is the upper 32 bits, offset the
    // low 8 (Section III-B).
    Addr a = 0x123456789ull * kLineSize;
    PackedPhys p = PackedPhys::fromAddr(a);
    EXPECT_EQ(p.base, 0x1234567u);
    EXPECT_EQ(p.offset, 0x89u);
}

// ------------------------------------------------------------ LineStore

TEST(LineStore, AllocateDistinctAddresses)
{
    NvmStore nvm(1 << 20);
    LineStore ls(nvm);
    Addr a = ls.allocate();
    Addr b = ls.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(ls.liveLines(), 2u);
}

TEST(LineStore, RefCountLifecycle)
{
    NvmStore nvm(1 << 20);
    LineStore ls(nvm);
    Addr a = ls.allocate();
    nvm.write(a, CacheLine{}, 0);
    ls.addRef(a);
    ls.addRef(a);
    EXPECT_EQ(ls.refCount(a), 2u);
    EXPECT_FALSE(ls.release(a));
    EXPECT_TRUE(ls.isLive(a));
    EXPECT_TRUE(ls.release(a));
    EXPECT_FALSE(ls.isLive(a));
    EXPECT_FALSE(nvm.contains(a));  // content erased with last ref
}

TEST(LineStore, FreedAddressIsReused)
{
    NvmStore nvm(1 << 20);
    LineStore ls(nvm);
    Addr a = ls.allocate();
    ls.addRef(a);
    ls.release(a);
    Addr b = ls.allocate();
    EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- AMT

MetadataConfig
tinyMeta()
{
    MetadataConfig cfg;
    cfg.amtCacheBytes = 8 * kLineSize;  // 8 entry blocks (5 entries each)
    cfg.amtAssoc = 2;
    cfg.efitCacheBytes = 16 * 16;
    cfg.efitAssoc = 2;
    cfg.decayPeriod = 0;  // no decay unless a test wants it
    return cfg;
}

/** Logical address of the first line in AMT entry-block @p group. */
Addr
groupAddr(const Amt &amt, std::uint64_t group)
{
    return group * amt.entriesPerBlock() * kLineSize;
}

TEST(Amt, LookupMissesWhenEmpty)
{
    Amt amt(tinyMeta(), 1 << 30);
    Amt::LookupResult r = amt.lookup(0);
    EXPECT_FALSE(r.found);
    EXPECT_FALSE(r.cacheHit);
    EXPECT_TRUE(r.effects.nvmRead);  // had to consult NVMM
}

TEST(Amt, UpdateThenCachedLookup)
{
    Amt amt(tinyMeta(), 1 << 30);
    amt.update(640, 128);
    Amt::LookupResult r = amt.lookup(640);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.cacheHit);
    EXPECT_EQ(r.phys, 128u);
    EXPECT_EQ(amt.stats().cacheHits.value(), 1u);
}

TEST(Amt, EvictedDirtyBlockTriggersWriteback)
{
    MetadataConfig cfg = tinyMeta();
    cfg.amtCacheBytes = 2 * kLineSize;  // 2 blocks, 2-way: one set
    Amt amt(cfg, 1 << 30);
    // Three distinct entry blocks into a 2-way set.
    amt.update(groupAddr(amt, 0), 64);
    amt.update(groupAddr(amt, 1), 128);
    MetadataEffects eff = amt.update(groupAddr(amt, 2), 192);
    EXPECT_TRUE(eff.nvmWriteback);
    EXPECT_EQ(amt.stats().nvmWritebacks.value(), 1u);
}

TEST(Amt, UpdatesWithinOneBlockCoalesce)
{
    // Consecutive logical lines share an entry block: updating all of
    // them dirties one block and costs at most one write-back later.
    MetadataConfig cfg = tinyMeta();
    Amt amt(cfg, 1 << 30);
    for (std::uint64_t i = 0; i < amt.entriesPerBlock(); ++i)
        amt.update(i * kLineSize, 64 * (i + 1));
    EXPECT_EQ(amt.stats().nvmWritebacks.value(), 0u);
    for (std::uint64_t i = 0; i < amt.entriesPerBlock(); ++i)
        EXPECT_EQ(amt.lookup(i * kLineSize).phys, 64 * (i + 1));
}

TEST(Amt, MissFetchesFromNvmTableAndCaches)
{
    MetadataConfig cfg = tinyMeta();
    cfg.amtCacheBytes = 2 * kLineSize;
    Amt amt(cfg, 1 << 30);
    amt.update(groupAddr(amt, 0), 64);
    // Push block 0 out of the tiny cache.
    amt.update(groupAddr(amt, 1), 128);
    amt.update(groupAddr(amt, 2), 192);
    // Entry for block 0 must still resolve via the NVMM table.
    Amt::LookupResult r = amt.lookup(groupAddr(amt, 0));
    EXPECT_TRUE(r.found);
    EXPECT_FALSE(r.cacheHit);
    EXPECT_TRUE(r.effects.nvmRead);
    EXPECT_EQ(r.phys, 64u);
    // And is now cached again.
    Amt::LookupResult r2 = amt.lookup(groupAddr(amt, 0));
    EXPECT_TRUE(r2.cacheHit);
}

TEST(Amt, PeekDoesNotDisturbCache)
{
    Amt amt(tinyMeta(), 1 << 30);
    amt.update(0, 64);
    std::uint64_t hits = amt.stats().cacheHits.value();
    auto p = amt.peek(0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 64u);
    EXPECT_EQ(amt.stats().cacheHits.value(), hits);
    EXPECT_FALSE(amt.peek(999 * kLineSize).has_value());
}

TEST(Amt, ManyToOneMapping)
{
    Amt amt(tinyMeta(), 1 << 30);
    amt.update(0, 4096);
    amt.update(64, 4096);
    EXPECT_EQ(amt.lookup(0).phys, 4096u);
    EXPECT_EQ(amt.lookup(64).phys, 4096u);
    EXPECT_EQ(amt.mappingCount(), 2u);
}

TEST(Amt, NvmBytesTracksEntries)
{
    MetadataConfig cfg = tinyMeta();
    Amt amt(cfg, 1 << 30);
    amt.update(0, 64);
    amt.update(64, 128);
    EXPECT_EQ(amt.nvmBytes(), 2 * cfg.amtEntryBytes);
}

// ---------------------------------------------------------------- EFIT

TEST(Efit, InsertThenHit)
{
    Efit efit(tinyMeta());
    efit.insert(0xabc, 640);
    Efit::Entry *e = efit.lookup(0xabc);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->phys.toAddr(), 640u);
    EXPECT_EQ(e->referH, 1u);
    EXPECT_EQ(efit.stats().hits.value(), 1u);
}

TEST(Efit, MissNeverConsultsNvm)
{
    // Structural property of selective dedup: the EFIT has no NVMM
    // backing at all — a miss is just a miss.
    Efit efit(tinyMeta());
    EXPECT_EQ(efit.lookup(0x123), nullptr);
    EXPECT_EQ(efit.stats().misses.value(), 1u);
}

TEST(Efit, BumpRefSaturatesAtReferHMax)
{
    MetadataConfig cfg = tinyMeta();
    cfg.referHMax = 3;
    Efit efit(cfg);
    efit.insert(1, 0);
    Efit::Entry *e = efit.lookup(1);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(efit.bumpRef(e));   // 2
    EXPECT_TRUE(efit.bumpRef(e));   // 3
    EXPECT_FALSE(efit.bumpRef(e));  // saturated
    EXPECT_EQ(efit.stats().referHSaturations.value(), 1u);
}

TEST(Efit, LrcuEvictsLowestRefCount)
{
    MetadataConfig cfg = tinyMeta();
    cfg.efitCacheBytes = 2 * 16;  // one 2-way set
    Efit efit(cfg);
    // Use fingerprints landing in the same (only) set.
    efit.insert(10, 0);
    efit.insert(20, 64);
    // Make fp=10 hot.
    Efit::Entry *hot = efit.lookup(10);
    efit.bumpRef(hot);
    efit.bumpRef(hot);
    // Insert a third: LRCU must evict fp=20 (referH 1), not fp=10.
    efit.insert(30, 128);
    EXPECT_NE(efit.lookup(10), nullptr);
    EXPECT_EQ(efit.lookup(20), nullptr);
    EXPECT_NE(efit.lookup(30), nullptr);
    EXPECT_EQ(efit.stats().evictionsRef1.value(), 1u);
}

TEST(Efit, LruModeIgnoresRefCounts)
{
    MetadataConfig cfg = tinyMeta();
    cfg.efitCacheBytes = 2 * 16;
    cfg.useLrcu = false;
    Efit efit(cfg);
    efit.insert(10, 0);
    efit.insert(20, 64);
    Efit::Entry *hot = efit.lookup(10);
    efit.bumpRef(hot);
    efit.bumpRef(hot);
    // lookup(10) refreshed LRU too, so 20 is LRU either way; touch 20
    // then 10 to make 10... we want to show refcounts don't protect:
    efit.lookup(20);  // now 10 is LRU despite high referH
    efit.insert(30, 128);
    EXPECT_EQ(efit.lookup(10), nullptr);  // hot entry evicted under LRU
    EXPECT_NE(efit.lookup(20), nullptr);
}

TEST(Efit, DecaySubtractsFixedValue)
{
    MetadataConfig cfg = tinyMeta();
    cfg.efitCacheBytes = 8 * 16;
    cfg.decayPeriod = 4;  // decay every 4 inserts
    cfg.decayDelta = 1;
    Efit efit(cfg);
    efit.insert(99, 0);
    Efit::Entry *e = efit.lookup(99);
    for (int i = 0; i < 5; ++i)
        efit.bumpRef(e);
    std::uint32_t before = e->referH;
    // Trigger one decay round with 4 more inserts.
    for (std::uint64_t i = 0; i < 4; ++i)
        efit.insert(1000 + i, 64 * (i + 1));
    EXPECT_EQ(efit.stats().decayRounds.value(), 1u);
    Efit::Entry *after = efit.lookup(99);
    if (after)  // may have been evicted depending on set mapping
        EXPECT_EQ(after->referH, before - 1);
}

TEST(Efit, EraseRemovesMatchingEntryOnly)
{
    Efit efit(tinyMeta());
    efit.insert(5, 0);
    efit.erase(5, 64);  // wrong phys: no-op
    EXPECT_NE(efit.lookup(5), nullptr);
    efit.erase(5, 0);
    EXPECT_EQ(efit.lookup(5), nullptr);
}

TEST(Efit, CapacityMatchesPaperGeometry)
{
    // Table I: 512 KB EFIT at 16 B/entry = 32K entries.
    MetadataConfig cfg;
    Efit efit(cfg);
    EXPECT_EQ(efit.capacityEntries(), 512u * 1024 / 16);
}

// ------------------------------------------------------------- FpTable

TEST(FpTable, MissRequiresNvmLookup)
{
    FpTable t(16 * 26, 26, 2, 1 << 30);
    FpTable::LookupResult r = t.lookup(0x42);
    EXPECT_FALSE(r.found);
    EXPECT_FALSE(r.cacheHit);
    EXPECT_TRUE(r.nvmLookup);  // full dedup always checks NVMM
    EXPECT_EQ(t.stats().nvmLookups.value(), 1u);
}

TEST(FpTable, InsertThenCacheHit)
{
    FpTable t(16 * 26, 26, 2, 1 << 30);
    Addr store_addr;
    t.insert(0x42, 640, store_addr);
    EXPECT_NE(store_addr, kInvalidAddr);
    FpTable::LookupResult r = t.lookup(0x42);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.cacheHit);
    EXPECT_EQ(r.phys, 640u);
}

TEST(FpTable, EvictedEntryStillFoundViaNvm)
{
    FpTable t(2 * 26, 26, 2, 1 << 30);  // single 2-way set
    Addr sa;
    t.insert(1, 0, sa);
    t.insert(2, 64, sa);
    t.insert(3, 128, sa);  // evicts one of the first two from cache
    // All three remain findable (full index lives in NVMM).
    for (std::uint64_t fp : {1, 2, 3}) {
        FpTable::LookupResult r = t.lookup(fp);
        EXPECT_TRUE(r.found) << fp;
    }
    EXPECT_GT(t.stats().nvmFoundAfterMiss.value(), 0u);
}

TEST(FpTable, EraseForgetsEverywhere)
{
    FpTable t(16 * 26, 26, 2, 1 << 30);
    Addr sa;
    t.insert(7, 0, sa);
    t.erase(7);
    FpTable::LookupResult r = t.lookup(7);
    EXPECT_FALSE(r.found);
    EXPECT_TRUE(r.nvmLookup);
    EXPECT_EQ(t.nvmEntries(), 0u);
}

TEST(FpTable, NvmBytesUsesEntrySize)
{
    FpTable t(16 * 26, 26, 2, 1 << 30);
    Addr sa;
    t.insert(1, 0, sa);
    t.insert(2, 64, sa);
    EXPECT_EQ(t.nvmBytes(), 52u);
}

// ------------------------------------------------------------ predictor

TEST(DupPredictor, LearnsDuplicateRegions)
{
    DupPredictor p(64);
    Addr addr = 0x1000;
    // Initially weakly not-duplicate.
    EXPECT_FALSE(p.predictDuplicate(addr));
    p.train(addr, false, true);
    p.train(addr, p.predictDuplicate(addr), true);
    EXPECT_TRUE(p.predictDuplicate(addr));
}

TEST(DupPredictor, ForgetsAfterNonDuplicates)
{
    DupPredictor p(64);
    Addr addr = 0x2000;
    for (int i = 0; i < 4; ++i)
        p.train(addr, p.predictDuplicate(addr), true);
    EXPECT_TRUE(p.predictDuplicate(addr));
    for (int i = 0; i < 4; ++i)
        p.train(addr, p.predictDuplicate(addr), false);
    EXPECT_FALSE(p.predictDuplicate(addr));
}

TEST(DupPredictor, AccuracyTracking)
{
    DupPredictor p(64);
    p.train(0, true, true);    // T1
    p.train(64, true, false);  // F2
    p.train(128, false, false);// T3
    p.train(192, false, true); // F4
    EXPECT_EQ(p.stats().total(), 4u);
    EXPECT_DOUBLE_EQ(p.stats().accuracy(), 0.5);
    EXPECT_EQ(p.stats().predictDupActualDup.value(), 1u);
    EXPECT_EQ(p.stats().predictNewActualDup.value(), 1u);
}

} // namespace
} // namespace esd
