/**
 * @file
 * Functional tests for the four schemes: read-your-writes correctness,
 * deduplication behaviour, latency composition, and metadata
 * footprints.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/random.hh"
#include "dedup/baseline.hh"
#include "dedup/dedup_sha1.hh"
#include "dedup/dewrite.hh"
#include "dedup/esd.hh"
#include "dedup/scheme_factory.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"

namespace esd
{
namespace
{

SimConfig
testConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.banksPerRank = 8;
    cfg.pcm.writeQueueDepth = 64;
    cfg.pcm.rowBufferLines = 0;  // exact array latencies in assertions
    return cfg;
}

struct Harness
{
    explicit Harness(SchemeKind kind, SimConfig cfg = testConfig())
        : config(cfg), device(cfg.pcm), store(cfg.pcm.capacityBytes),
          scheme(makeScheme(kind, cfg, device, store))
    {
    }

    AccessResult
    write(Addr addr, const CacheLine &data)
    {
        AccessResult r = scheme->write(addr, data, now);
        now += 200;
        return r;
    }

    CacheLine
    read(Addr addr)
    {
        CacheLine out;
        scheme->read(addr, out, now);
        now += 200;
        return out;
    }

    SimConfig config;
    PcmDevice device;
    NvmStore store;
    std::unique_ptr<DedupScheme> scheme;
    Tick now = 0;
};

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    l.setWord(7, ~v);
    return l;
}

// ------------------------------------------------- read-your-writes

class SchemeRywTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SchemeRywTest, ReadReturnsLastWrite)
{
    Harness h(GetParam());
    Pcg32 rng(1);
    std::unordered_map<Addr, CacheLine> expect;
    for (int i = 0; i < 400; ++i) {
        Addr addr = static_cast<Addr>(rng.below(64)) * kLineSize;
        CacheLine data;
        // Mix unique and duplicate contents, including zero lines.
        switch (rng.below(3)) {
          case 0:
            data = CacheLine{};
            break;
          case 1:
            data = lineWith(rng.below(8));  // small duplicate pool
            break;
          default:
            rng.fillLine(data);
            break;
        }
        h.write(addr, data);
        expect[addr] = data;
    }
    for (const auto &[addr, want] : expect)
        EXPECT_EQ(h.read(addr), want) << "addr " << addr;
}

TEST_P(SchemeRywTest, UnwrittenAddressReadsZero)
{
    Harness h(GetParam());
    EXPECT_TRUE(h.read(0x100000).isZero());
}

TEST_P(SchemeRywTest, OverwriteSameAddressKeepsLatest)
{
    Harness h(GetParam());
    h.write(0, lineWith(1));
    h.write(0, lineWith(2));
    h.write(0, lineWith(1));  // back to earlier content (dedup case)
    EXPECT_EQ(h.read(0), lineWith(1));
}

TEST_P(SchemeRywTest, CiphertextAtRestDiffersFromPlaintext)
{
    // Data on the device must be encrypted: the stored bytes may not
    // equal the plaintext line.
    Harness h(GetParam());
    CacheLine plain = lineWith(0x1234);
    h.write(0, plain);
    bool found_plain = false;
    // Scan all resident lines (phys unknown to the test).
    for (std::uint64_t li = 0; li < 256; ++li) {
        auto s = h.store.read(li * kLineSize);
        if (s && s->data == plain)
            found_plain = true;
    }
    EXPECT_FALSE(found_plain);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeRywTest,
    ::testing::Values(SchemeKind::Baseline, SchemeKind::DedupSha1,
                      SchemeKind::DeWrite, SchemeKind::Esd),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return std::string(schemeName(info.param));
    });

// ---------------------------------------------------------- Baseline

TEST(BaselineScheme, NeverDeduplicates)
{
    Harness h(SchemeKind::Baseline);
    for (int i = 0; i < 50; ++i)
        h.write(static_cast<Addr>(i) * kLineSize, CacheLine{});
    EXPECT_EQ(h.scheme->stats().dedupHits.value(), 0u);
    EXPECT_EQ(h.scheme->stats().nvmDataWrites.value(), 50u);
    EXPECT_EQ(h.scheme->metadataNvmBytes(), 0u);
}

TEST(BaselineScheme, WriteLatencyIsEncryptPlusDevice)
{
    Harness h(SchemeKind::Baseline);
    AccessResult r = h.write(0, lineWith(1));
    EXPECT_EQ(r.latency, h.config.crypto.encryptLatency +
                             h.config.pcm.writeLatency);
}

TEST(BaselineScheme, ReadLatencyIsDeviceRead)
{
    Harness h(SchemeKind::Baseline);
    h.write(0, lineWith(1));
    CacheLine out;
    AccessResult r = h.scheme->read(0, out, h.now + 10000);
    EXPECT_EQ(r.latency, h.config.pcm.readLatency);
}

// --------------------------------------------------------- Dedup_SHA1

TEST(DedupSha1, DetectsDuplicatesAcrossAddresses)
{
    Harness h(SchemeKind::DedupSha1);
    CacheLine data = lineWith(0xfeed);
    h.write(0, data);
    AccessResult r = h.write(kLineSize, data);
    EXPECT_TRUE(r.dedup);
    EXPECT_EQ(h.scheme->stats().dedupHits.value(), 1u);
    EXPECT_EQ(h.scheme->stats().nvmDataWrites.value(), 1u);
    EXPECT_EQ(h.store.residentLines(), 1u);
}

TEST(DedupSha1, WritePathAlwaysPaysHashLatency)
{
    Harness h(SchemeKind::DedupSha1);
    AccessResult r = h.write(0, lineWith(1));
    EXPECT_GE(r.latency, h.config.crypto.sha1Latency);
    // A duplicate write also pays it.
    AccessResult r2 = h.write(kLineSize, lineWith(1));
    EXPECT_TRUE(r2.dedup);
    EXPECT_GE(r2.latency, h.config.crypto.sha1Latency);
}

TEST(DedupSha1, DeadLineFingerprintIsForgotten)
{
    Harness h(SchemeKind::DedupSha1);
    h.write(0, lineWith(0xaa));      // phys P holds 0xaa, ref 1
    h.write(0, lineWith(0xbb));      // remap: P dies
    // Writing 0xaa again must be a fresh write, not a stale dedup.
    AccessResult r = h.write(kLineSize, lineWith(0xaa));
    EXPECT_FALSE(r.dedup);
    EXPECT_EQ(h.read(kLineSize), lineWith(0xaa));
    EXPECT_EQ(h.read(0), lineWith(0xbb));
}

TEST(DedupSha1, MetadataIncludesFingerprintsAndAmt)
{
    Harness h(SchemeKind::DedupSha1);
    Pcg32 rng(2);
    for (int i = 0; i < 20; ++i) {
        CacheLine l;
        rng.fillLine(l);
        h.write(static_cast<Addr>(i) * kLineSize, l);
    }
    // 20 unique fingerprints @26 B + 20 AMT entries @12 B.
    EXPECT_EQ(h.scheme->metadataNvmBytes(), 20u * 26 + 20u * 12);
}

// ------------------------------------------------------------ DeWrite

TEST(DeWrite, DeduplicatesWithByteVerify)
{
    Harness h(SchemeKind::DeWrite);
    CacheLine data = lineWith(0xbeef);
    h.write(0, data);
    // Warm the predictor toward "duplicate" for this address region.
    AccessResult r;
    for (int i = 1; i <= 4; ++i)
        r = h.write(0, data);
    EXPECT_TRUE(r.dedup);
    EXPECT_GT(h.scheme->stats().compareReads.value(), 0u);
}

TEST(DeWrite, TracksPredictionOutcomes)
{
    Harness h(SchemeKind::DeWrite);
    Pcg32 rng(3);
    for (int i = 0; i < 200; ++i) {
        CacheLine l;
        if (rng.chance(0.5))
            l = lineWith(rng.below(4));
        else
            rng.fillLine(l);
        h.write(static_cast<Addr>(rng.below(32)) * kLineSize, l);
    }
    auto *dw = dynamic_cast<DeWriteScheme *>(h.scheme.get());
    ASSERT_NE(dw, nullptr);
    EXPECT_EQ(dw->predictor().stats().total(), 200u);
}

TEST(DeWrite, CrcChargedForEveryWrite)
{
    Harness h(SchemeKind::DeWrite);
    for (int i = 0; i < 10; ++i)
        h.write(static_cast<Addr>(i) * kLineSize, lineWith(7));
    EXPECT_DOUBLE_EQ(h.scheme->stats().hashEnergy,
                     10 * h.config.crypto.crcEnergy);
}

// ---------------------------------------------------------------- ESD

TEST(Esd, DeduplicatesViaEccAndCompare)
{
    Harness h(SchemeKind::Esd);
    CacheLine data = lineWith(0xcafe);
    AccessResult w1 = h.write(0, data);
    EXPECT_FALSE(w1.dedup);
    AccessResult w2 = h.write(kLineSize, data);
    EXPECT_TRUE(w2.dedup);
    EXPECT_EQ(h.scheme->stats().compareReads.value(), 1u);
    EXPECT_EQ(h.store.residentLines(), 1u);
}

TEST(Esd, NoHashEnergyEver)
{
    Harness h(SchemeKind::Esd);
    Pcg32 rng(4);
    for (int i = 0; i < 100; ++i) {
        CacheLine l;
        rng.fillLine(l);
        h.write(static_cast<Addr>(i) * kLineSize, l);
    }
    EXPECT_DOUBLE_EQ(h.scheme->stats().hashEnergy, 0.0);
    EXPECT_DOUBLE_EQ(h.scheme->stats().breakdown.fpCompute, 0.0);
}

TEST(Esd, NoFingerprintNvmTrafficEver)
{
    // Selective dedup: no fingerprint lookups or stores in NVMM.
    Harness h(SchemeKind::Esd);
    Pcg32 rng(5);
    for (int i = 0; i < 300; ++i) {
        CacheLine l;
        if (rng.chance(0.6))
            l = lineWith(rng.below(8));
        else
            rng.fillLine(l);
        h.write(static_cast<Addr>(rng.below(64)) * kLineSize, l);
    }
    EXPECT_EQ(h.scheme->stats().fpNvmLookups.value(), 0u);
    EXPECT_EQ(h.scheme->stats().fpNvmStores.value(), 0u);
    EXPECT_DOUBLE_EQ(h.scheme->stats().breakdown.fpNvmLookup, 0.0);
}

TEST(Esd, MetadataIsAmtOnly)
{
    Harness h(SchemeKind::Esd);
    for (int i = 0; i < 10; ++i)
        h.write(static_cast<Addr>(i) * kLineSize, lineWith(i));
    EXPECT_EQ(h.scheme->metadataNvmBytes(),
              10u * h.config.metadata.amtEntryBytes);
}

TEST(Esd, EccCollisionCaughtByCompare)
{
    // Construct two different lines with identical line ECC (swap one
    // word for a check-colliding word) and prove no false dedup.
    Harness h(SchemeKind::Esd);
    Pcg32 rng(6);
    CacheLine a;
    rng.fillLine(a);
    std::uint64_t w1 = a.word(0), w2 = 0;
    bool found = false;
    for (int i = 0; i < 300000 && !found; ++i) {
        w2 = rng.next64();
        found = w2 != w1 &&
                Hamming72::encode(w1) == Hamming72::encode(w2);
    }
    ASSERT_TRUE(found);
    CacheLine b = a;
    b.setWord(0, w2);
    ASSERT_EQ(LineEccCodec::encode(a), LineEccCodec::encode(b));

    h.write(0, a);
    AccessResult r = h.write(kLineSize, b);
    EXPECT_FALSE(r.dedup);
    EXPECT_EQ(h.scheme->stats().compareMismatches.value(), 1u);
    // Both contents must be independently readable.
    EXPECT_EQ(h.read(0), a);
    EXPECT_EQ(h.read(kLineSize), b);
}

TEST(Esd, ReferHSaturationRewritesAsNewLine)
{
    SimConfig cfg = testConfig();
    cfg.metadata.referHMax = 3;
    cfg.metadata.decayPeriod = 0;
    Harness h(SchemeKind::Esd, cfg);
    CacheLine data = lineWith(0x5a5a);
    int rewrites_before =
        static_cast<int>(h.scheme->stats().refHOverflowRewrites.value());
    for (int i = 0; i < 10; ++i)
        h.write(static_cast<Addr>(i) * kLineSize, data);
    EXPECT_GT(
        static_cast<int>(h.scheme->stats().refHOverflowRewrites.value()),
        rewrites_before);
    // Correctness preserved throughout.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(h.read(static_cast<Addr>(i) * kLineSize), data);
}

TEST(Esd, StaleEfitEntryAfterLineDeathIsHandled)
{
    Harness h(SchemeKind::Esd);
    CacheLine data = lineWith(0x77);
    h.write(0, data);              // phys P, EFIT entry -> P
    h.write(0, lineWith(0x88));    // P dies, entry erased
    AccessResult r = h.write(kLineSize, data);
    EXPECT_FALSE(r.dedup);  // must not dedup against a dead line
    EXPECT_EQ(h.read(kLineSize), data);
}

// ------------------------------------------------------------ factory

TEST(SchemeFactory, NamesAndParsing)
{
    EXPECT_STREQ(schemeName(SchemeKind::Esd), "ESD");
    EXPECT_EQ(parseSchemeKind("0"), SchemeKind::Baseline);
    EXPECT_EQ(parseSchemeKind("ESD"), SchemeKind::Esd);
    EXPECT_EQ(parseSchemeKind("dewrite"), SchemeKind::DeWrite);
    EXPECT_EQ(parseSchemeKind("Tra_sha1"), SchemeKind::DedupSha1);
    EXPECT_EQ(allSchemeKinds().size(), 4u);
}

TEST(SchemeFactory, BuildsMatchingInstances)
{
    SimConfig cfg = testConfig();
    PcmDevice dev(cfg.pcm);
    NvmStore store(cfg.pcm.capacityBytes);
    for (SchemeKind k : allSchemeKinds()) {
        auto s = makeScheme(k, cfg, dev, store);
        EXPECT_EQ(s->name(), schemeName(k));
    }
}

} // namespace
} // namespace esd
