/**
 * @file
 * Extended known-answer and property tests for the crypto substrate:
 * additional FIPS/RFC vectors, long-message behaviour, avalanche
 * properties, and cross-algorithm sanity.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <string>

#include "common/random.hh"
#include "crypto/aes.hh"
#include "crypto/crc.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"

namespace esd
{
namespace
{

// --------------------------------------------------- more SHA-1 KATs

TEST(Sha1Extended, MillionAs)
{
    // FIPS 180-4 long test vector: 1,000,000 repetitions of 'a'.
    Sha1 s;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        s.update(chunk.data(), chunk.size());
    EXPECT_EQ(Sha1::toHex(s.finish()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Extended, ExactBlockBoundaryMessages)
{
    // 55/56/63/64/65-byte messages cross the padding edge cases.
    Pcg32 rng(1);
    std::vector<std::uint8_t> buf(130);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
        // Streaming one byte at a time must equal one-shot.
        Sha1 s;
        for (std::size_t i = 0; i < len; ++i)
            s.update(buf.data() + i, 1);
        EXPECT_EQ(s.finish(), Sha1::digest(buf.data(), len))
            << "len " << len;
    }
}

TEST(Sha1Extended, AvalancheOnLines)
{
    // Flipping any single bit of a line changes ~half the digest bits.
    Pcg32 rng(2);
    CacheLine base;
    rng.fillLine(base);
    std::uint64_t fp = Sha1::fingerprint64(base);
    for (unsigned bit = 0; bit < 512; bit += 37) {
        CacheLine mod = base;
        mod[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        std::uint64_t fp2 = Sha1::fingerprint64(mod);
        int hamming = std::popcount(fp ^ fp2);
        EXPECT_GT(hamming, 10) << "bit " << bit;
        EXPECT_LT(hamming, 54) << "bit " << bit;
    }
}

// ---------------------------------------------------- more MD5 KATs

TEST(Md5Extended, Rfc1321Suite)
{
    auto hex = [](const char *m) {
        return Md5::toHex(Md5::digest(m, std::strlen(m)));
    };
    EXPECT_EQ(hex("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(hex("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                  "0123456789"),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(hex("1234567890123456789012345678901234567890123456789012"
                  "3456789012345678901234567890"),
              "57edf4a22be3c955ac49da2e2107b67a");
}

// ----------------------------------------------------- CRC properties

TEST(CrcExtended, AppendingZerosChangesCrc32c)
{
    // CRC32C (with final inversion) is not length-blind.
    const char *m = "esd";
    std::uint32_t a = Crc32c::compute(m, 3);
    char padded[8] = {'e', 's', 'd', 0, 0, 0, 0, 0};
    EXPECT_NE(a, Crc32c::compute(padded, 8));
}

TEST(CrcExtended, SingleBitSensitivity)
{
    Pcg32 rng(3);
    CacheLine base;
    rng.fillLine(base);
    std::uint32_t c = Crc32c::line(base);
    std::uint64_t c64 = Crc64::line(base);
    for (unsigned bit = 0; bit < 512; bit += 61) {
        CacheLine mod = base;
        mod[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(Crc32c::line(mod), c) << bit;
        EXPECT_NE(Crc64::line(mod), c64) << bit;
    }
}

TEST(CrcExtended, LinearityOverXor)
{
    // CRCs (modulo the init/final XOR convention) are affine: for
    // equal-length messages, crc(a^b^c) == crc(a)^crc(b)^crc(c).
    Pcg32 rng(4);
    CacheLine a, b, c;
    rng.fillLine(a);
    rng.fillLine(b);
    rng.fillLine(c);
    CacheLine abc;
    for (std::size_t i = 0; i < kLineSize; ++i)
        abc[i] = a[i] ^ b[i] ^ c[i];
    EXPECT_EQ(Crc32c::line(abc),
              Crc32c::line(a) ^ Crc32c::line(b) ^ Crc32c::line(c));
    EXPECT_EQ(Crc64::line(abc),
              Crc64::line(a) ^ Crc64::line(b) ^ Crc64::line(c));
}

// ------------------------------------------------------ AES properties

TEST(AesExtended, SboxIsAPermutation)
{
    bool seen[256] = {};
    for (int x = 0; x < 256; ++x) {
        std::uint8_t y = Aes128::sbox(static_cast<std::uint8_t>(x));
        EXPECT_FALSE(seen[y]);
        seen[y] = true;
    }
}

TEST(AesExtended, SboxHasNoFixedPoints)
{
    for (int x = 0; x < 256; ++x) {
        auto xb = static_cast<std::uint8_t>(x);
        EXPECT_NE(Aes128::sbox(xb), xb);
        EXPECT_NE(Aes128::sbox(xb), static_cast<std::uint8_t>(~xb));
    }
}

TEST(AesExtended, DifferentKeysDifferentCiphertext)
{
    AesKey k1{}, k2{};
    k1.fill(1);
    k2.fill(2);
    AesBlock pt{};
    EXPECT_NE(Aes128(k1).encryptBlock(pt), Aes128(k2).encryptBlock(pt));
}

TEST(AesExtended, BlockAvalanche)
{
    AesKey key{};
    key.fill(0x7e);
    Aes128 aes(key);
    AesBlock pt{};
    AesBlock c0 = aes.encryptBlock(pt);
    pt[0] ^= 1;  // one plaintext bit
    AesBlock c1 = aes.encryptBlock(pt);
    int diff = 0;
    for (int i = 0; i < 16; ++i)
        diff += std::popcount(
            static_cast<unsigned>(c0[i] ^ c1[i]));
    EXPECT_GT(diff, 40);  // ~64 expected of 128
    EXPECT_LT(diff, 90);
}

// ------------------------------------------------- CTR-mode properties

TEST(CtrModeExtended, PadIsXorHomomorphic)
{
    // Same (addr, ctr): cipher(a) ^ cipher(b) == a ^ b — the classic
    // two-time-pad property, which is why the counter must advance
    // per write (and does).
    AesKey key{};
    key.fill(0x21);
    CtrModeEngine eng(key);
    Pcg32 rng(5);
    CacheLine a, b;
    rng.fillLine(a);
    rng.fillLine(b);
    CacheLine ca = eng.applyPad(640, 9, a);
    CacheLine cb = eng.applyPad(640, 9, b);
    for (std::size_t i = 0; i < kLineSize; ++i)
        EXPECT_EQ(static_cast<std::uint8_t>(ca[i] ^ cb[i]),
                  static_cast<std::uint8_t>(a[i] ^ b[i]));
}

TEST(CtrModeExtended, SingleCipherBitFlipMapsToSamePlainBit)
{
    // The property the read-path SEC-DED relies on: CTR decryption is
    // a XOR, so a flipped ciphertext bit flips exactly that plaintext
    // bit.
    AesKey key{};
    key.fill(0x44);
    CtrModeEngine eng(key);
    Pcg32 rng(6);
    CacheLine plain;
    rng.fillLine(plain);
    CacheLine cipher = eng.encrypt(0, plain);
    cipher[17] ^= 0x10;  // bit 4 of byte 17
    CacheLine back = eng.decrypt(0, cipher);
    for (std::size_t i = 0; i < kLineSize; ++i) {
        if (i == 17)
            EXPECT_EQ(static_cast<std::uint8_t>(back[i] ^ plain[i]),
                      0x10);
        else
            EXPECT_EQ(back[i], plain[i]);
    }
}

} // namespace
} // namespace esd
