/**
 * @file
 * FlatMap / FlatSet / BumpArena unit and differential tests.
 *
 * The map is fuzzed against a `std::unordered_map` oracle through long
 * interleaved insert/overwrite/erase/lookup sequences, including the
 * regimes where open addressing goes wrong if it is going to: rehash
 * boundaries (load crossing 3/4), erase-heavy churn exercising
 * backward-shift deletion, and adversarial keys that all land in one
 * home bucket.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/random.hh"

namespace esd
{
namespace
{

TEST(FlatMapCapacity, PowerOfTwoFloorEight)
{
    EXPECT_EQ(flatMapCapacityFor(0), 8u);
    EXPECT_EQ(flatMapCapacityFor(1), 8u);
    EXPECT_EQ(flatMapCapacityFor(8), 8u);
    EXPECT_EQ(flatMapCapacityFor(9), 16u);
    EXPECT_EQ(flatMapCapacityFor(16), 16u);
    EXPECT_EQ(flatMapCapacityFor(17), 32u);
    EXPECT_EQ(flatMapCapacityFor(1u << 20), 1u << 20);
    EXPECT_EQ(flatMapCapacityFor((1u << 20) + 1), 1u << 21);
}

TEST(FlatMap, EmptyMapBehaves)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.contains(42));
    EXPECT_EQ(m.count(42), 0u);
    EXPECT_EQ(m.erase(42), 0u);
    EXPECT_TRUE(m.find(42) == m.end());
    EXPECT_TRUE(m.begin() == m.end());
}

TEST(FlatMap, InsertFindEraseBasics)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k * 64] = k;  // line-aligned keys: low bits all zero
    EXPECT_EQ(m.size(), 100u);
    for (std::uint64_t k = 0; k < 100; ++k) {
        auto it = m.find(k * 64);
        ASSERT_TRUE(it != m.end());
        EXPECT_EQ(it->second, k);
    }
    EXPECT_FALSE(m.contains(1));  // unaligned key never inserted

    for (std::uint64_t k = 0; k < 100; k += 2)
        EXPECT_EQ(m.erase(k * 64), 1u);
    EXPECT_EQ(m.size(), 50u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(m.contains(k * 64), k % 2 == 1);
}

TEST(FlatMap, EmplaceReportsFreshness)
{
    FlatMap<std::uint64_t, int> m;
    auto [it1, fresh1] = m.emplace(7, 1);
    EXPECT_TRUE(fresh1);
    EXPECT_EQ(it1->second, 1);
    auto [it2, fresh2] = m.emplace(7, 2);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(it2->second, 1);  // emplace does not overwrite
    m.assign(7, 3);
    EXPECT_EQ(m.find(7)->second, 3);  // assign does
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultInserts)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_EQ(m[5], 0u);
    m[5] += 3;
    m[5] += 4;
    EXPECT_EQ(m[5], 7u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ClearKeepsCapacityDropsEntries)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k] = 1;
    std::uint64_t cap = m.capacity();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_FALSE(m.contains(0));
    m[3] = 9;
    EXPECT_EQ(m.find(3)->second, 9);
}

TEST(FlatMap, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(1000);
    std::uint64_t cap = m.capacity();
    EXPECT_GE(cap, 1024u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k] = static_cast<int>(k);
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 1; k <= 500; ++k)
        m[k * 4096] = k;
    std::set<std::uint64_t> seen;
    std::uint64_t value_sum = 0;
    for (const auto &[key, value] : m) {
        EXPECT_TRUE(seen.insert(key).second);
        value_sum += value;
    }
    EXPECT_EQ(seen.size(), 500u);
    EXPECT_EQ(value_sum, 500u * 501u / 2);
}

TEST(FlatMap, EraseByIteratorThenRescan)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 64; ++k)
        m[k] = static_cast<int>(k);
    auto it = m.find(13);
    ASSERT_TRUE(it != m.end());
    m.erase(it);
    EXPECT_FALSE(m.contains(13));
    EXPECT_EQ(m.size(), 63u);
    // Every other key must have survived the backward shift.
    for (std::uint64_t k = 0; k < 64; ++k) {
        if (k == 13)
            continue;
        ASSERT_TRUE(m.contains(k)) << "lost key " << k;
        EXPECT_EQ(m.find(k)->second, static_cast<int>(k));
    }
}

/** All keys share one home bucket: probe chains stay correct through
 * displacement, wraparound, and backward-shift erase. */
TEST(FlatMap, AdversarialSingleBucketCluster)
{
    struct CollidingHash
    {
        std::uint64_t operator()(const std::uint64_t &) const
        {
            return 5;  // everything homes to slot 5 & mask
        }
    };
    FlatMap<std::uint64_t, std::uint64_t, CollidingHash> m;
    // Stay below the load limit for the smallest capacities while
    // still forcing long linear runs (incl. wraparound at cap 64).
    for (std::uint64_t k = 0; k < 48; ++k)
        m[k] = k * 3;
    EXPECT_EQ(m.size(), 48u);
    for (std::uint64_t k = 0; k < 48; ++k) {
        ASSERT_TRUE(m.contains(k));
        EXPECT_EQ(m.find(k)->second, k * 3);
    }
    // Erase from the middle of the one long run, repeatedly.
    for (std::uint64_t k = 0; k < 48; k += 3)
        EXPECT_EQ(m.erase(k), 1u);
    for (std::uint64_t k = 0; k < 48; ++k) {
        if (k % 3 == 0) {
            EXPECT_FALSE(m.contains(k));
        } else {
            ASSERT_TRUE(m.contains(k));
            EXPECT_EQ(m.find(k)->second, k * 3);
        }
    }
}

/** Fill exactly to the growth threshold and one past it: the table
 * must rehash exactly when load crosses 3/4 and lose nothing. */
TEST(FlatMap, RehashBoundary)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    m.reserve(64);
    std::uint64_t cap = m.capacity();
    std::uint64_t limit = cap * 3 / 4;
    for (std::uint64_t k = 0; k < limit; ++k)
        m[k * 64] = k;
    EXPECT_EQ(m.capacity(), cap) << "grew before the load limit";
    m[limit * 64] = limit;
    EXPECT_GT(m.capacity(), cap) << "failed to grow at the load limit";
    for (std::uint64_t k = 0; k <= limit; ++k) {
        ASSERT_TRUE(m.contains(k * 64)) << "lost key across rehash";
        EXPECT_EQ(m.find(k * 64)->second, k);
    }
}

/** Long interleaved op sequence vs a std::unordered_map oracle. */
void
fuzzAgainstOracle(std::uint64_t seed, std::uint64_t ops,
                  std::uint32_t key_space, bool line_aligned)
{
    Pcg32 rng(seed);
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;

    for (std::uint64_t op = 0; op < ops; ++op) {
        std::uint64_t key = rng.below(key_space);
        if (line_aligned)
            key <<= 6;
        switch (rng.below(5)) {
          case 0:  // insert-if-absent
          {
            std::uint64_t v = rng.next();
            bool fresh = m.emplace(key, v).second;
            bool ofresh = oracle.emplace(key, v).second;
            ASSERT_EQ(fresh, ofresh);
            break;
          }
          case 1:  // overwrite
          {
            std::uint64_t v = rng.next();
            m.assign(key, v);
            oracle[key] = v;
            break;
          }
          case 2:  // accumulate through operator[]
          {
            m[key] += 1;
            oracle[key] += 1;
            break;
          }
          case 3:  // erase
            ASSERT_EQ(m.erase(key), oracle.erase(key));
            break;
          default:  // lookup
          {
            auto it = m.find(key);
            auto oit = oracle.find(key);
            ASSERT_EQ(it != m.end(), oit != oracle.end());
            if (oit != oracle.end())
                ASSERT_EQ(it->second, oit->second);
            break;
          }
        }
        ASSERT_EQ(m.size(), oracle.size());
    }

    // Full post-fuzz audit in both directions.
    std::uint64_t walked = 0;
    for (const auto &[key, value] : m) {
        auto oit = oracle.find(key);
        ASSERT_TRUE(oit != oracle.end());
        ASSERT_EQ(value, oit->second);
        ++walked;
    }
    ASSERT_EQ(walked, oracle.size());
    for (const auto &[key, value] : oracle) {
        auto it = m.find(key);
        ASSERT_TRUE(it != m.end());
        ASSERT_EQ(it->second, value);
    }
}

TEST(FlatMapFuzz, DenseSmallKeySpace)
{
    // Heavy churn in a tiny key space: constant insert/erase of the
    // same slots, maximum backward-shift traffic.
    fuzzAgainstOracle(/*seed=*/1, /*ops=*/60000, /*key_space=*/256,
                      /*line_aligned=*/false);
}

TEST(FlatMapFuzz, LineAlignedAddresses)
{
    // The production key shape: 64-byte-aligned addresses.
    fuzzAgainstOracle(/*seed=*/2, /*ops=*/60000, /*key_space=*/4096,
                      /*line_aligned=*/true);
}

TEST(FlatMapFuzz, GrowthDominated)
{
    // Wide key space: mostly inserts, many rehash crossings.
    fuzzAgainstOracle(/*seed=*/3, /*ops=*/60000,
                      /*key_space=*/1u << 20, /*line_aligned=*/true);
}

TEST(FlatMapFuzz, MultipleSeeds)
{
    for (std::uint64_t seed = 10; seed < 16; ++seed)
        fuzzAgainstOracle(seed, 12000, 1024, seed % 2 == 0);
}

/** Iteration order must be a pure function of the operation sequence
 * (the determinism contract std::unordered_map does not give). */
TEST(FlatMap, IterationOrderIsReproducible)
{
    auto build = [] {
        FlatMap<std::uint64_t, std::uint64_t> m;
        Pcg32 rng(99);
        for (int i = 0; i < 5000; ++i) {
            std::uint64_t k = rng.below(2048) * 64;
            if (rng.chance(0.3))
                m.erase(k);
            else
                m[k] = static_cast<std::uint64_t>(i);
        }
        return m;
    };
    FlatMap<std::uint64_t, std::uint64_t> a = build();
    FlatMap<std::uint64_t, std::uint64_t> b = build();
    auto ia = a.begin(), ib = b.begin();
    for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        EXPECT_EQ(ia->second, ib->second);
    }
    EXPECT_TRUE(ia == a.end());
    EXPECT_TRUE(ib == b.end());
}

TEST(FlatSet, InsertContainsErase)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(10));
    EXPECT_FALSE(s.insert(10));
    EXPECT_TRUE(s.insert(20));
    EXPECT_TRUE(s.contains(10));
    EXPECT_EQ(s.count(20), 1u);
    EXPECT_FALSE(s.contains(30));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.erase(10), 1u);
    EXPECT_EQ(s.erase(10), 0u);
    EXPECT_FALSE(s.contains(10));
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(BumpArena, CreatesAlignedClusteredNodes)
{
    BumpArena arena;
    struct Node
    {
        std::uint32_t bit;
        bool value;
        Node *next;
    };
    Node *head = nullptr;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        Node *n = arena.create<Node>(i, i % 2 == 0, head);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(n) % alignof(Node),
                  0u);
        head = n;
    }
    std::uint32_t expect = 999;
    for (Node *n = head; n; n = n->next, --expect) {
        EXPECT_EQ(n->bit, expect);
        EXPECT_EQ(n->value, expect % 2 == 0);
    }
    EXPECT_GE(arena.bytesAllocated(), 1000 * sizeof(Node));
    arena.release();
    EXPECT_EQ(arena.bytesAllocated(), 0u);
}

TEST(BumpArena, MixedSizesAndAlignments)
{
    BumpArena arena;
    std::vector<void *> ptrs;
    Pcg32 rng(7);
    for (int i = 0; i < 500; ++i) {
        std::size_t align = std::size_t{1} << rng.below(5);  // 1..16
        std::size_t bytes = 1 + rng.below(200);
        void *p = arena.allocate(bytes, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
        std::memset(p, 0xab, bytes);  // must be writable
        ptrs.push_back(p);
    }
    // All distinct.
    std::sort(ptrs.begin(), ptrs.end());
    EXPECT_TRUE(std::adjacent_find(ptrs.begin(), ptrs.end()) ==
                ptrs.end());
}

} // namespace
} // namespace esd
