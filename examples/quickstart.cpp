/**
 * @file
 * Quickstart: simulate the ESD scheme on one application profile and
 * print the headline metrics.
 *
 *   ./quickstart [app] [records]
 *
 * Apps are the 20 paper workloads (default: gcc).
 */

#include <cstdlib>
#include <iostream>

#include "core/simulator.hh"
#include "metrics/report.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace esd;

    std::string app = argc > 1 ? argv[1] : "gcc";
    std::uint64_t records =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    SimConfig cfg;  // Table I defaults
    std::cout << cfg.summary() << "\n";

    SyntheticWorkload trace(findApp(app), /*global_seed=*/1);
    Simulator sim(cfg, SchemeKind::Esd);
    RunResult r = sim.run(trace, records, records / 5);

    std::cout << "app: " << app << "  scheme: " << r.schemeName
              << "  records: " << r.records << "\n\n";

    TablePrinter t({"metric", "value"});
    t.addRow({"logical writes", std::to_string(r.logicalWrites)});
    t.addRow({"writes eliminated",
              std::to_string(r.dedupHits) + " (" +
                  TablePrinter::pct(r.writeReduction()) + ")"});
    t.addRow({"NVMM data writes", std::to_string(r.nvmDataWrites)});
    t.addRow({"mean write latency",
              TablePrinter::num(r.writeLatency.mean(), 1) + " ns"});
    t.addRow({"p99 write latency",
              TablePrinter::num(r.writeLatency.percentile(99), 1) +
                  " ns"});
    t.addRow({"mean read latency",
              TablePrinter::num(r.readLatency.mean(), 1) + " ns"});
    t.addRow({"IPC", TablePrinter::num(r.ipc, 3)});
    t.addRow({"total energy",
              TablePrinter::num(r.energy.total() / 1e6, 2) + " uJ"});
    t.addRow({"EFIT hit rate", TablePrinter::pct(r.fpCacheHitRate)});
    t.addRow({"AMT cache hit rate", TablePrinter::pct(r.amtCacheHitRate)});
    t.addRow({"metadata in NVMM",
              TablePrinter::num(r.metadataNvmBytes / 1024.0, 1) + " KB"});
    t.print();

    std::cout << "\nTip: run `scheme_compare " << app
              << "` to see Baseline/Dedup_SHA1/DeWrite side by side.\n";
    return 0;
}
