/**
 * @file
 * Full-stack demo: CPU loads/stores walk the L1/L2/L3 hierarchy, and
 * the resulting LLC traffic drives the encrypted, deduplicating NVMM.
 * Shows where data lives at each stage and that dedup happens on the
 * eviction stream, not on CPU stores.
 */

#include <iostream>

#include "common/random.hh"
#include "core/cpu_system.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;

    SimConfig cfg;
    // A small hierarchy so the demo evicts quickly.
    cfg.cache.l1Size = 32 * kLineSize;
    cfg.cache.l2Size = 128 * kLineSize;
    cfg.cache.l3Size = 1024 * kLineSize;

    CpuSystem sys(cfg, SchemeKind::Esd);
    Pcg32 rng(11);

    // Phase 1: write a duplicate-rich working set (16 distinct
    // payloads over 8K lines) — typical zero/constant-fill behaviour.
    std::cout << "storing 8192 lines with 16 distinct payloads...\n";
    for (std::uint64_t i = 0; i < 8192; ++i) {
        CacheLine data;
        data.setWord(0, rng.below(16));
        data.setWord(7, 0xA5A5A5A5ull);
        sys.store(i * kLineSize, data);
    }

    const SchemeStats &s = sys.scheme().stats();
    TablePrinter t({"stage", "count"});
    t.addRow({"CPU stores", "8192"});
    t.addRow({"LLC evictions reaching NVMM",
              std::to_string(s.logicalWrites.value())});
    t.addRow({"eliminated by dedup", std::to_string(s.dedupHits.value())});
    t.addRow({"unique lines resident",
              std::to_string(s.nvmDataWrites.value())});
    t.print();

    // Phase 2: read a line back through the whole stack.
    std::cout << "\nloading line 0 back: ";
    CpuAccessResult r = sys.load(0);
    std::cout << "word[0]=" << r.data.word(0) << " served from level "
              << r.hitLevel << " in " << TablePrinter::num(r.latencyNs, 1)
              << " ns\n";

    // Phase 3: flush far past every cache and observe a memory fill.
    for (std::uint64_t i = 8192; i < 24576; ++i) {
        CacheLine data;
        data.setWord(0, 999);
        sys.store(i * kLineSize, data);
    }
    CpuAccessResult far = sys.load(0);
    std::cout << "after flushing the caches, line 0 loads from level "
              << far.hitLevel << " (4 = NVMM) with word[0]="
              << far.data.word(0) << "\n";

    std::cout << "\nL1 hit rate "
              << TablePrinter::pct(sys.hierarchy().l1().stats().hitRate())
              << ", L3 hit rate "
              << TablePrinter::pct(sys.hierarchy().l3().stats().hitRate())
              << ", EFIT dedup caught "
              << TablePrinter::pct(s.logicalWrites.value()
                                       ? static_cast<double>(
                                             s.dedupHits.value()) /
                                             s.logicalWrites.value()
                                       : 0)
              << " of evictions\n";
    return 0;
}
