/**
 * @file
 * Side-by-side comparison of the four schemes on one application —
 * the interactive equivalent of the artifact's run.sh (0: Baseline,
 * 1: Tra_sha1, 2: DeWrite, 3: ESD).
 *
 *   ./scheme_compare [app] [records]
 */

#include <cstdlib>
#include <iostream>

#include "core/simulator.hh"
#include "metrics/report.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace esd;

    std::string app = argc > 1 ? argv[1] : "deepsjeng";
    std::uint64_t records =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.banksPerRank = 4;

    std::cout << "app: " << app << "  records: " << records << "\n\n";

    TablePrinter t({"scheme", "write-red", "wlat(ns)", "p99-w(ns)",
                    "rlat(ns)", "IPC", "energy(uJ)", "meta(KB)"});

    double base_wlat = 0, base_rlat = 0, base_ipc = 0;
    for (SchemeKind k : allSchemeKinds()) {
        SyntheticWorkload trace(findApp(app), 1);
        RunResult r = runWorkload(cfg, k, trace, records, records / 5);
        if (k == SchemeKind::Baseline) {
            base_wlat = r.writeLatency.mean();
            base_rlat = r.readLatency.mean();
            base_ipc = r.ipc;
        }
        t.addRow({r.schemeName, TablePrinter::pct(r.writeReduction()),
                  TablePrinter::num(r.writeLatency.mean(), 1),
                  TablePrinter::num(r.writeLatency.percentile(99), 0),
                  TablePrinter::num(r.readLatency.mean(), 1),
                  TablePrinter::num(r.ipc, 3),
                  TablePrinter::num(r.energy.total() / 1e6, 1),
                  TablePrinter::num(r.metadataNvmBytes / 1024.0, 1)});
        if (k != SchemeKind::Baseline && base_wlat > 0) {
            std::cout << "  " << r.schemeName << " vs Baseline:  write "
                      << TablePrinter::num(
                             base_wlat / r.writeLatency.mean(), 2)
                      << "x  read "
                      << TablePrinter::num(
                             base_rlat / r.readLatency.mean(), 2)
                      << "x  IPC "
                      << TablePrinter::num(r.ipc / base_ipc, 2) << "x\n";
        }
    }
    std::cout << "\n";
    t.print();
    return 0;
}
