/**
 * @file
 * Demonstrates the Section III-E consistency machinery: counter-mode
 * encrypted memory with lazily persisted counters, a simulated power
 * failure, and Osiris-style ECC-assisted counter recovery.
 */

#include <iostream>

#include "common/random.hh"
#include "crypto/secure_memory.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;

    AesKey key{};
    key.fill(0x5c);
    // Persist a line's counter only every 8th write.
    SecureCounterMemory mem(key, 8);

    Pcg32 rng(2026);
    std::cout << "writing 2000 lines (heavy rewrites, counters "
                 "persisted every 8th write)...\n";
    std::unordered_map<Addr, CacheLine> expect;
    for (int i = 0; i < 2000; ++i) {
        Addr addr = static_cast<Addr>(rng.below(128)) * kLineSize;
        CacheLine data;
        rng.fillLine(data);
        mem.write(addr, data);
        expect[addr] = data;
    }
    std::cout << "counter persists issued: " << mem.counterPersists()
              << " (vs 2000 with write-through counters)\n\n";

    std::cout << "*** power failure: volatile counters lost ***\n\n";
    mem.crash();

    RecoveryReport rep = mem.recover();
    TablePrinter t({"recovery metric", "value"});
    t.addRow({"lines examined", std::to_string(rep.lines)});
    t.addRow({"persisted counter was exact", std::to_string(rep.exact)});
    t.addRow({"re-derived via ECC search",
              std::to_string(rep.recovered)});
    t.addRow({"re-derived despite media fault",
              std::to_string(rep.recoveredScrubbed)});
    t.addRow({"unrecoverable", std::to_string(rep.unrecoverable)});
    t.addRow({"trial decryptions", std::to_string(rep.trialDecrypts)});
    t.print();

    std::cout << "\nverifying every line decrypts to its last-written "
                 "content... ";
    std::size_t bad = 0;
    for (const auto &[addr, want] : expect) {
        CacheLine out;
        if (!mem.read(addr, out) || out != want)
            ++bad;
    }
    std::cout << (bad == 0 ? "all good" : "MISMATCH") << " (" << bad
              << " bad of " << expect.size() << ")\n";
    return bad == 0 ? 0 : 1;
}
