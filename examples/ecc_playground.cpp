/**
 * @file
 * A tour of the ECC machinery ESD piggybacks on:
 *   1. encode a cache line into its per-word Hamming(72,64) ECC,
 *   2. inject and correct a single-bit fault,
 *   3. detect a double-bit fault,
 *   4. use the ECC as a dedup fingerprint, including a constructed
 *      collision that the byte-by-byte comparison catches.
 */

#include <iostream>

#include "common/random.hh"
#include "ecc/error_injector.hh"
#include "ecc/line_ecc.hh"

int
main()
{
    using namespace esd;
    Pcg32 rng(7);

    // 1. Encode.
    CacheLine line;
    rng.fillLine(line);
    LineEcc ecc = LineEccCodec::encode(line);
    std::cout << "line word[0] = 0x" << std::hex << line.word(0)
              << "\nline ECC     = 0x" << ecc << std::dec
              << "  (8 check bits per 8-byte word)\n\n";

    // 2. Single-bit fault: corrected transparently.
    CacheLine faulty = line;
    ErrorInjector::flipDataBit(faulty, 100);
    LineDecodeResult fix = LineEccCodec::decode(faulty, ecc);
    std::cout << "flipped data bit 100 -> status "
              << (fix.status == EccStatus::CorrectedData ? "CORRECTED"
                                                         : "??")
              << ", line restored: " << (fix.line == line ? "yes" : "no")
              << "\n";

    // 3. Double-bit fault in one word: detected, not miscorrected.
    CacheLine doubly = line;
    ErrorInjector::flipDataBit(doubly, 3);
    ErrorInjector::flipDataBit(doubly, 40);
    LineDecodeResult det = LineEccCodec::decode(doubly, ecc);
    std::cout << "flipped bits 3+40    -> status "
              << (det.status == EccStatus::Uncorrectable
                      ? "DETECTED (uncorrectable)"
                      : "??")
              << "\n\n";

    // 4. Fingerprinting: equal lines share an ECC; different lines
    //    almost never do — but collisions exist, which is why ESD
    //    always verifies with a byte comparison.
    CacheLine copy = line;
    std::cout << "copy has same ECC: "
              << (LineEccCodec::encode(copy) == ecc ? "yes" : "no")
              << "\n";

    // Construct a collision: find a second word with the same 8 check
    // bits as word 0 and swap it in.
    std::uint64_t w1 = line.word(0), w2 = 0;
    for (;;) {
        w2 = rng.next64();
        if (w2 != w1 && Hamming72::encode(w2) == Hamming72::encode(w1))
            break;
    }
    CacheLine collider = line;
    collider.setWord(0, w2);
    std::cout << "constructed collider: different content? "
              << (collider != line ? "yes" : "no") << ", same ECC? "
              << (LineEccCodec::encode(collider) == ecc ? "yes" : "no")
              << "\nbyte-by-byte comparison catches it: "
              << (collider == line ? "MISSED" : "yes") << "\n";
    return 0;
}
