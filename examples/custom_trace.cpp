/**
 * @file
 * Bring-your-own-trace workflow, mirroring the artifact appendix:
 * generate a trace file in the documented text format, read it back,
 * and replay it through a selected scheme.
 *
 *   ./custom_trace [scheme 0..3|name] [trace-path]
 *
 * When the trace file does not exist it is first synthesised from the
 * "wrf" profile so the example is self-contained.
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/simulator.hh"
#include "metrics/report.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace esd;

    SchemeKind kind =
        argc > 1 ? parseSchemeKind(argv[1]) : SchemeKind::Esd;
    std::string path = argc > 2 ? argv[2] : "esd_example_trace.txt";

    if (!std::filesystem::exists(path)) {
        std::cout << "synthesising " << path << " from the wrf profile\n";
        SyntheticWorkload w(findApp("wrf"), 42);
        TextTraceWriter writer(path);
        TraceRecord rec;
        for (int i = 0; i < 20000; ++i) {
            w.next(rec);
            writer.write(rec);
        }
    }

    std::cout << "replaying " << path << " under " << schemeName(kind)
              << "\n";
    TextTraceReader reader(path);
    SimConfig cfg;
    RunResult r = runWorkload(cfg, kind, reader, /*records=*/0,
                              /*warmup=*/0);

    TablePrinter t({"metric", "value"});
    t.addRow({"records", std::to_string(r.records)});
    t.addRow({"writes / reads", std::to_string(r.logicalWrites) + " / " +
                                    std::to_string(r.logicalReads)});
    t.addRow({"write reduction", TablePrinter::pct(r.writeReduction())});
    t.addRow({"mean write latency",
              TablePrinter::num(r.writeLatency.mean(), 1) + " ns"});
    t.addRow({"mean read latency",
              TablePrinter::num(r.readLatency.mean(), 1) + " ns"});
    t.addRow({"energy", TablePrinter::num(r.energy.total() / 1e6, 2) +
                            " uJ"});
    t.print();

    std::cout << "\ntrace format: '<W|R> <hex addr> [<128 hex data>] "
                 "<icount>' per line; '#' comments\n";
    return 0;
}
